//! Route handlers. Each takes the shared [`ServerState`], the parsed
//! request, and the raw stream (responses — fixed or chunked — are
//! written directly).

use crate::http::{json_escape, write_response, ChunkedWriter, Request};
use crate::jobs::Job;
use crate::ServerState;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use wcoj_query::{load_csv, parse_program, parse_query, run_program, submit_query, QueryTextError};
use wcoj_storage::Relation;

/// How long `GET /query/{id}?block=1` waits before reporting the state
/// as-is. Bounded so a stuck query cannot pin a connection thread.
const BLOCK_DEADLINE: Duration = Duration::from_secs(10);

/// Dispatches one request. Transport errors bubble up (the connection is
/// closed either way); protocol-level failures are answered in-band.
pub(crate) fn handle(
    state: &ServerState,
    req: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let path = req.path.trim_end_matches('/');
    let segments: Vec<&str> = path.split('/').skip(1).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => write_response(stream, 200, "OK", "text/plain", &[], b"ok\n"),
        ("GET", ["metrics"]) => {
            let body = wcoj_obs::global().render_prometheus();
            write_response(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            )
        }
        ("PUT", ["relation", name]) => put_relation(state, req, name, stream),
        ("POST", ["query"]) => post_query(state, req, stream),
        ("GET", ["query", id]) => match id.parse::<u64>() {
            Ok(id) => query_status(state, req, id, stream),
            Err(_) => error_response(stream, 404, "job ids are integers"),
        },
        ("GET", ["query", id, "rows"]) => match id.parse::<u64>() {
            Ok(id) => query_rows(state, id, stream),
            Err(_) => error_response(stream, 404, "job ids are integers"),
        },
        _ => error_response(stream, 404, "no such route"),
    }
}

/// Writes a uniform JSON error body.
pub(crate) fn error_response(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
) -> std::io::Result<()> {
    let reason = reason_for(status);
    let body = format!("{{\"error\":\"{}\"}}\n", json_escape(message));
    let retry: &[(&str, String)] = if status == 429 {
        &[("Retry-After", String::from("1"))]
    } else {
        &[]
    };
    write_response(
        stream,
        status,
        reason,
        "application/json",
        retry,
        body.as_bytes(),
    )
}

fn reason_for(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        _ => "Internal Server Error",
    }
}

/// `PUT /relation/{name}`: CSV body → relation in the catalog.
fn put_relation(
    state: &ServerState,
    req: &Request,
    name: &str,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return error_response(stream, 400, "relation names are [A-Za-z0-9_]+");
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(stream, 400, "CSV body must be UTF-8");
    };
    let rel = match load_csv(text, &state.dict) {
        Ok(rel) => rel,
        Err(e) => return error_response(stream, 400, &format!("CSV: {e}")),
    };
    let rows = rel.len();
    state
        .catalog
        .write()
        .expect("catalog lock")
        .insert(name, rel);
    let body = format!(
        "{{\"relation\":\"{}\",\"rows\":{rows}}}\n",
        json_escape(name)
    );
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

/// `POST /query`: a single conjunctive query is submitted through the
/// service for streaming; a multi-statement Datalog program runs eagerly
/// and the last rule's result is materialized.
fn post_query(state: &ServerState, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(stream, 400, "query body must be UTF-8");
    };
    state.metrics.queries_total.inc();
    match parse_query(text) {
        Ok(q) => {
            let submitted = {
                let catalog = state.catalog.read().expect("catalog lock");
                submit_query(&q, &catalog)
            };
            match submitted {
                Ok(pending) => {
                    let columns = pending.columns().to_vec();
                    let streaming = pending.incremental();
                    let id = state.jobs.insert(Job::Pending(pending));
                    let body = format!(
                        "{{\"id\":{id},\"columns\":[{}],\"streaming\":{streaming}}}\n",
                        columns_json(&columns)
                    );
                    write_response(
                        stream,
                        202,
                        "Accepted",
                        "application/json",
                        &[],
                        body.as_bytes(),
                    )
                }
                Err(e) => query_error(state, stream, &e),
            }
        }
        // Not a single query — maybe a program. If the program parse
        // fails too, report *its* error (a superset grammar).
        Err(_) => match parse_program(text) {
            Ok(program) => {
                let ran = {
                    let mut catalog = state.catalog.write().expect("catalog lock");
                    run_program(&program, &mut catalog)
                };
                match ran {
                    Ok(outputs) => {
                        let (name, last) = outputs.last().expect("programs have ≥ 1 rule");
                        let id = state.jobs.insert(Job::Materialized {
                            columns: last.columns.clone(),
                            relation: last.relation.clone(),
                        });
                        let body = format!(
                            "{{\"id\":{id},\"head\":\"{}\",\"rules\":{},\"columns\":[{}],\"streaming\":false}}\n",
                            json_escape(name),
                            outputs.len(),
                            columns_json(&last.columns)
                        );
                        write_response(
                            stream,
                            202,
                            "Accepted",
                            "application/json",
                            &[],
                            body.as_bytes(),
                        )
                    }
                    Err(e) => query_error(state, stream, &e),
                }
            }
            Err(e) => query_error(state, stream, &e),
        },
    }
}

/// Maps a [`QueryTextError`] onto the wire, bumping the right counters.
fn query_error(
    state: &ServerState,
    stream: &mut TcpStream,
    e: &QueryTextError,
) -> std::io::Result<()> {
    let status = e.http_status();
    if status == 429 {
        state.metrics.overloaded_total.inc();
    } else {
        state.metrics.errors_total.inc();
    }
    error_response(stream, status, &e.to_string())
}

fn columns_json(columns: &[String]) -> String {
    columns
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect::<Vec<_>>()
        .join(",")
}

/// `GET /query/{id}` (+`?block=1`): the job's current state as JSON.
fn query_status(
    state: &ServerState,
    req: &Request,
    id: u64,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let deadline = Instant::now() + BLOCK_DEADLINE;
    let block = req.query_flag("block");
    loop {
        // `PendingQuery` is `Send` but not `Sync`, so a blocking wait
        // would pin the jobs lock; poll `is_finished` briefly instead.
        let status: Option<(String, bool)> = state.jobs.with(|map| {
            map.get(&id).map(|job| match job {
                Job::Pending(p) => (
                    format!(
                        "{{\"id\":{id},\"state\":\"pending\",\"finished\":{},\"columns\":[{}],\"streaming\":{}}}\n",
                        p.is_finished(),
                        columns_json(p.columns()),
                        p.incremental()
                    ),
                    p.is_finished(),
                ),
                Job::Streaming => (
                    format!("{{\"id\":{id},\"state\":\"streaming\"}}\n"),
                    true,
                ),
                Job::Done { columns, rows } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"done\",\"columns\":[{}],\"rows\":{rows}}}\n",
                        columns_json(columns)
                    ),
                    true,
                ),
                Job::Materialized { columns, relation } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"done\",\"columns\":[{}],\"rows\":{}}}\n",
                        columns_json(columns),
                        relation.len()
                    ),
                    true,
                ),
                Job::Failed { status, message } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"failed\",\"status\":{status},\"error\":\"{}\"}}\n",
                        json_escape(message)
                    ),
                    true,
                ),
            })
        });
        match status {
            None => return error_response(stream, 404, "no such job"),
            Some((body, settled)) => {
                if block && !settled && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                return write_response(stream, 200, "OK", "application/json", &[], body.as_bytes());
            }
        }
    }
}

/// Records a row-stream failure in the job table and — unless chunked
/// headers already went out (`mid_stream`) — answers with the status.
fn fail_job(
    state: &ServerState,
    stream: &mut TcpStream,
    id: u64,
    status: u16,
    message: &str,
    mid_stream: bool,
) -> std::io::Result<()> {
    if status == 429 {
        state.metrics.overloaded_total.inc();
    } else {
        state.metrics.errors_total.inc();
    }
    state.jobs.with(|map| {
        map.insert(
            id,
            Job::Failed {
                status,
                message: message.to_owned(),
            },
        );
    });
    if mid_stream {
        Ok(())
    } else {
        error_response(stream, status, message)
    }
}

/// Decodes one row to a CSV line through the shared dictionary.
fn csv_line(state: &ServerState, row: &[wcoj_storage::Value]) -> String {
    let mut line = String::new();
    for (i, &v) in row.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        match state.dict.decode(v) {
            Some(d) => {
                use std::fmt::Write as _;
                let _ = write!(line, "{d}");
            }
            None => {
                use std::fmt::Write as _;
                let _ = write!(line, "{}", v.0);
            }
        }
    }
    line.push('\n');
    line
}

fn relation_csv(state: &ServerState, rel: &Relation) -> String {
    let mut out = String::new();
    for row in rel.iter_rows() {
        out.push_str(&csv_line(state, row));
    }
    out
}

/// `GET /query/{id}/rows`: streams the result as chunked CSV. For an
/// incrementally streamable plan each root slot's rows go out as a chunk
/// the moment that slot settles; otherwise one merged chunk at the end.
fn query_rows(state: &ServerState, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    // Take ownership of the pending query (or a terminal answer) while
    // holding the lock only for the swap.
    enum Fetch {
        Pending(wcoj_query::PendingQuery),
        Materialized(Relation),
        Answer(u16, String),
    }
    let fetch = state.jobs.with(|map| match map.remove(&id) {
        None => Fetch::Answer(404, "no such job".to_owned()),
        Some(Job::Pending(p)) => {
            map.insert(id, Job::Streaming);
            Fetch::Pending(p)
        }
        Some(Job::Materialized { columns, relation }) => {
            map.insert(
                id,
                Job::Done {
                    columns: columns.clone(),
                    rows: relation.len() as u64,
                },
            );
            Fetch::Materialized(relation)
        }
        Some(job @ Job::Streaming) => {
            map.insert(id, job);
            Fetch::Answer(409, "rows are already being streamed".to_owned())
        }
        Some(job @ Job::Done { .. }) => {
            map.insert(id, job);
            Fetch::Answer(410, "rows were already streamed".to_owned())
        }
        Some(Job::Failed { status, message }) => {
            let answer = Fetch::Answer(status, message.clone());
            map.insert(id, Job::Failed { status, message });
            answer
        }
    });

    match fetch {
        Fetch::Answer(status, message) => error_response(stream, status, &message),
        Fetch::Materialized(relation) => {
            let body = relation_csv(state, &relation);
            let mut w = ChunkedWriter::start(
                stream,
                200,
                "OK",
                "text/csv",
                &[("X-Streaming", "buffered".to_owned())],
            )?;
            w.chunk(body.as_bytes())?;
            w.finish()?;
            state.metrics.rows_streamed_total.add(relation.len() as u64);
            Ok(())
        }
        Fetch::Pending(mut pending) => {
            let columns = pending.columns().to_vec();
            let mode = if pending.incremental() {
                "incremental"
            } else {
                "buffered"
            };
            // The first batch decides the response shape: an error here
            // can still be answered with a plain status; past it the
            // chunked headers are on the wire.
            let first = match pending.next_batch() {
                Some(Err(e)) => {
                    drop(pending);
                    return fail_job(state, stream, id, e.http_status(), &e.to_string(), false);
                }
                other => other.map(|r| r.expect("Err handled above")),
            };
            let mut w = match ChunkedWriter::start(
                stream,
                200,
                "OK",
                "text/csv",
                &[("X-Streaming", mode.to_owned())],
            ) {
                Ok(w) => w,
                Err(e) => {
                    drop(pending);
                    let _ = fail_job(
                        state,
                        stream,
                        id,
                        499,
                        "client disconnected before the stream started",
                        true,
                    );
                    return Err(e);
                }
            };
            let mut rows: u64 = 0;
            let mut batch = first;
            while let Some(rel) = batch {
                let data = relation_csv(state, &rel);
                if let Err(e) = w.chunk(data.as_bytes()) {
                    // Client vanished mid-stream. Dropping `pending`
                    // cancels still-queued shards and frees the
                    // admission slot.
                    drop(pending);
                    let _ = fail_job(
                        state,
                        stream,
                        id,
                        499,
                        "client disconnected mid-stream",
                        true,
                    );
                    return Err(e);
                }
                rows += rel.len() as u64;
                batch = match pending.next_batch() {
                    Some(Ok(rel)) => Some(rel),
                    None => None,
                    Some(Err(e)) => {
                        // Headers already sent: the only honest signal
                        // is a truncated chunked stream (no terminator).
                        drop(pending);
                        return fail_job(state, stream, id, e.http_status(), &e.to_string(), true);
                    }
                };
            }
            if let Err(e) = w.finish() {
                let _ = fail_job(
                    state,
                    stream,
                    id,
                    499,
                    "client disconnected at stream end",
                    true,
                );
                return Err(e);
            }
            state.metrics.rows_streamed_total.add(rows);
            state.jobs.with(|map| {
                map.insert(id, Job::Done { columns, rows });
            });
            Ok(())
        }
    }
}
