//! The `wcoj-server` binary: configuration from `WCOJ_*` environment
//! variables, then serve until killed.

use wcoj_server::{Server, ServerConfig};

fn main() {
    let cfg = ServerConfig::from_env();
    let threads = cfg.conn_threads;
    match Server::start(cfg) {
        Ok(server) => {
            eprintln!(
                "wcoj-server listening on http://{} ({threads} connection threads)",
                server.addr()
            );
            for warned in wcoj_exec::malformed_env_warnings() {
                eprintln!("note: malformed env var {warned} fell back to its default");
            }
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("wcoj-server: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
