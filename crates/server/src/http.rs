//! Minimal HTTP/1.1 on blocking `std::net` sockets: just enough protocol
//! for the query endpoints — request line + headers + `Content-Length`
//! bodies in, fixed or chunked (`Transfer-Encoding: chunked`) responses
//! out. Connections are kept alive for a bounded number of requests
//! (with an idle timeout between them) unless the client asks for
//! `Connection: close` or the server's per-connection budget runs out;
//! bytes a client pipelines past one request's body carry over as the
//! start of the next.
//!
//! The satellite edge cases live here and each maps to a precise status:
//! oversized headers → `431`, a write body without `Content-Length` →
//! `411`, an oversized body → `413`, a stalled read → `408`, anything
//! malformed → `400`, and a clean disconnect before the first byte is a
//! non-event (no response, no error counter).

use std::io::{Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component, percent-decoding deliberately not applied (the
    /// routes only use `[A-Za-z0-9_/]` segments).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` iff the query string contains `key=1` or a bare `key`.
    #[must_use]
    pub fn query_flag(&self, key: &str) -> bool {
        self.query
            .as_deref()
            .is_some_and(|q| q.split('&').any(|kv| kv == key || kv == format!("{key}=1")))
    }

    /// `true` iff the client asked for `Connection: close`.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|tok| tok.trim().eq_ignore_ascii_case("close"))
        })
    }
}

/// A live connection plus the keep-alive decision for the response being
/// written on it. Handlers thread this through so every response frame
/// (fixed and chunked alike) advertises the same `Connection:` fate the
/// serve loop will honour afterwards.
pub(crate) struct Conn<'a> {
    pub(crate) stream: &'a mut TcpStream,
    /// `true` → responses say `Connection: keep-alive` and the serve
    /// loop reads another request; `false` → `Connection: close`.
    pub(crate) keep_alive: bool,
}

/// Why a request could not be read. Every variant except
/// [`RequestError::Disconnected`] and [`RequestError::Io`] maps to one
/// response status (see [`RequestError::status`]).
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or framing → `400`.
    Bad(&'static str),
    /// Request line + headers exceeded the configured cap → `431`.
    HeadersTooLarge,
    /// A `POST`/`PUT` without `Content-Length` → `411` (chunked request
    /// bodies are not supported).
    LengthRequired,
    /// `Content-Length` exceeds the body cap → `413`, refused before
    /// reading.
    BodyTooLarge,
    /// The socket read timed out mid-request → `408`.
    TimedOut,
    /// The client closed the connection before sending anything: not an
    /// error, nothing to answer.
    Disconnected,
    /// Transport failure mid-read; the connection is unusable.
    Io(std::io::Error),
}

impl RequestError {
    /// The `(status, reason, message)` to answer with, or `None` when no
    /// response can or should be written.
    #[must_use]
    pub fn status(&self) -> Option<(u16, &'static str, String)> {
        match self {
            RequestError::Bad(m) => Some((400, "Bad Request", (*m).to_owned())),
            RequestError::HeadersTooLarge => Some((
                431,
                "Request Header Fields Too Large",
                "request line + headers exceed the cap".to_owned(),
            )),
            RequestError::LengthRequired => Some((
                411,
                "Length Required",
                "write requests must carry Content-Length".to_owned(),
            )),
            RequestError::BodyTooLarge => Some((
                413,
                "Content Too Large",
                "request body exceeds the cap".to_owned(),
            )),
            RequestError::TimedOut => Some((
                408,
                "Request Timeout",
                "connection idle mid-request".to_owned(),
            )),
            RequestError::Disconnected | RequestError::Io(_) => None,
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request off `stream`, honouring the header/body caps. The
/// caller is expected to have applied any read timeout to the socket.
///
/// `carry` holds bytes a pipelining client sent past the previous
/// request's `Content-Length`; they are consumed first, and any bytes
/// past *this* request's body are left in it for the next call.
///
/// # Errors
/// See [`RequestError`].
pub fn read_request(
    stream: &mut TcpStream,
    max_header_bytes: usize,
    max_body_bytes: usize,
    carry: &mut Vec<u8>,
) -> Result<Request, RequestError> {
    // Accumulate until the header terminator, capped. Tolerates bare
    // "\n\n" from hand-rolled clients. Seeded with pipelined carry-over.
    let mut buf: Vec<u8> = std::mem::take(carry);
    buf.reserve(512);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(i) = find_header_end(&buf) {
            break i;
        }
        if buf.len() > max_header_bytes {
            return Err(RequestError::HeadersTooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(RequestError::TimedOut),
            Err(e) => return Err(RequestError::Io(e)),
        };
        if n == 0 {
            return if buf.is_empty() {
                Err(RequestError::Disconnected)
            } else {
                // Bytes arrived, then the stream ended mid-headers: a
                // truncated request, answered (best-effort) with 400.
                Err(RequestError::Bad("truncated request"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let (head, rest) = buf.split_at(header_end.0);
    let mut body: Vec<u8> = rest[header_end.1..].to_vec();

    let head = std::str::from_utf8(head).map_err(|_| RequestError::Bad("headers not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Bad("empty request line"))?
        .to_owned();
    let target = parts
        .next()
        .ok_or(RequestError::Bad("request line misses the target"))?;
    let version = parts
        .next()
        .ok_or(RequestError::Bad("request line misses the HTTP version"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(RequestError::Bad("malformed request line"));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(RequestError::Bad("malformed method token"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Bad("target must be absolute"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Bad("malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::Bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let req_has_body = matches!(method.as_str(), "POST" | "PUT");
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Bad("malformed Content-Length"))
        })
        .transpose()?;
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(RequestError::Bad("chunked request bodies unsupported"));
    }
    let want = match (req_has_body, content_length) {
        (true, None) => return Err(RequestError::LengthRequired),
        (_, Some(n)) if n > max_body_bytes => return Err(RequestError::BodyTooLarge),
        (_, Some(n)) => n,
        (false, None) => 0,
    };

    // Body bytes past the header terminator may already be buffered;
    // anything past `want` belongs to the next pipelined request.
    if body.len() > want {
        *carry = body.split_off(want);
    }
    while body.len() < want {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(RequestError::TimedOut),
            Err(e) => return Err(RequestError::Io(e)),
        };
        if n == 0 {
            return Err(RequestError::Bad("body shorter than Content-Length"));
        }
        let take = (want - body.len()).min(n);
        body.extend_from_slice(&chunk[..take]);
        if take < n {
            carry.extend_from_slice(&chunk[take..n]);
        }
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Position of the header terminator: `(offset of terminator, its
/// length)` — `\r\n\r\n` or `\n\n`.
fn find_header_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (i, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| (i, 2)))
}

/// Writes a complete fixed-length response and flushes. Errors are
/// returned so callers can account a vanished client, but there is
/// nothing further to do with the connection either way.
pub(crate) fn write_response(
    conn: &mut Conn<'_>,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let fate = if conn.keep_alive {
        "keep-alive"
    } else {
        "close"
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {fate}\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    conn.stream.write_all(head.as_bytes())?;
    conn.stream.write_all(body)?;
    conn.stream.flush()
}

/// An in-progress `Transfer-Encoding: chunked` response: `start`, then
/// any number of `chunk`s, then `finish`. Each chunk is flushed
/// immediately — the transport-level half of incremental row streaming.
pub(crate) struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the status line + headers and switches to chunked framing.
    pub(crate) fn start(
        conn: &'a mut Conn<'_>,
        status: u16,
        reason: &str,
        content_type: &str,
        extra_headers: &[(&str, String)],
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let fate = if conn.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let mut head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {fate}\r\n"
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        conn.stream.write_all(head.as_bytes())?;
        conn.stream.flush()?;
        Ok(ChunkedWriter {
            stream: &mut *conn.stream,
        })
    }

    /// Writes one chunk. Empty data is skipped — a zero-length chunk
    /// would terminate the stream on the wire.
    pub(crate) fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    pub(crate) fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Escapes `s` for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_variants() {
        assert_eq!(find_header_end(b"a\r\n\r\nrest"), Some((1, 4)));
        assert_eq!(find_header_end(b"a\n\nrest"), Some((1, 2)));
        assert_eq!(find_header_end(b"a\r\n"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
