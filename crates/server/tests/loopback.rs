//! Loopback tests: a real server on `127.0.0.1:0`, raw `TcpStream`
//! clients, no HTTP library on either side. Pins the protocol edge
//! cases (431/411/413/408/400, truncated requests, mid-stream
//! disconnects) and the full query round trip.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wcoj_core::nprr::PreparedQuery;
use wcoj_query::Catalog;
use wcoj_server::{Server, ServerConfig};
use wcoj_service::{Service, ServiceConfig};
use wcoj_storage::TrieIndex;

// ---------------------------------------------------------------- client

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    /// `true` iff the response was chunked and the terminating
    /// zero-chunk never arrived (the server aborted mid-stream).
    truncated: bool,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("UTF-8 body")
    }
}

fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    out
}

fn parse_response(raw: &[u8]) -> Response {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header line");
            (k.to_ascii_lowercase(), v.trim().to_owned())
        })
        .collect();
    let raw_body = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    if !chunked {
        return Response {
            status,
            headers,
            body: raw_body.to_vec(),
            truncated: false,
        };
    }
    // Dechunk; a missing zero-chunk terminator marks truncation.
    let mut body = Vec::new();
    let mut rest = raw_body;
    let truncated = loop {
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            break true;
        };
        let size_hex = std::str::from_utf8(&rest[..line_end]).expect("chunk size");
        let size = usize::from_str_radix(size_hex.trim(), 16).expect("hex chunk size");
        rest = &rest[line_end + 2..];
        if size == 0 {
            break false;
        }
        if rest.len() < size + 2 {
            break true;
        }
        body.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    };
    Response {
        status,
        headers,
        body,
        truncated,
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: loopback\r\n");
    if let Some(body) = body {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    if let Some(body) = body {
        req.push_str(body);
    }
    parse_response(&send_raw(addr, req.as_bytes()))
}

// --------------------------------------------------------------- servers

fn small_caps_server() -> Server {
    let cfg = ServerConfig {
        bind: "127.0.0.1:0".parse().unwrap(),
        conn_threads: 2,
        read_timeout: Some(Duration::from_millis(300)),
        max_header_bytes: 1024,
        max_body_bytes: 2048,
        ..ServerConfig::default()
    };
    Server::start_with(cfg, Catalog::new()).expect("bind loopback")
}

/// A server whose catalog routes through a caller-held 1-worker service
/// with `shard_min_size: 1`, so even small relations shard into multiple
/// root slots (the incremental-streaming and cancellation scenarios).
fn streaming_server(queue_depth: usize) -> (Server, Arc<Service>) {
    let service = Arc::new(Service::new(ServiceConfig {
        exec: wcoj_exec::ExecConfig {
            shard_min_size: 1,
            ..wcoj_exec::ExecConfig::default()
        },
        queue_depth,
        ..ServiceConfig::with_workers(1)
    }));
    let mut catalog = Catalog::new();
    catalog.set_service(Some(Arc::clone(&service)));
    let cfg = ServerConfig {
        bind: "127.0.0.1:0".parse().unwrap(),
        conn_threads: 3,
        ..ServerConfig::default()
    };
    let server = Server::start_with(cfg, catalog).expect("bind loopback");
    (server, service)
}

/// A 5-cycle whose engine run takes tens of milliseconds while its
/// submission costs microseconds — occupies the single worker so slots
/// of a concurrently submitted query settle one at a time.
fn blocker(seed: u64) -> Arc<PreparedQuery<TrieIndex>> {
    let rels = wcoj_datagen::cycle_instance(seed, 5, 200, 15);
    Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap())
}

fn edge_csv(rows: usize) -> String {
    // Deterministic LCG pairs with plenty of distinct roots, so a
    // `shard_min_size: 1` plan splits into multiple root slots.
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    let mut csv = String::new();
    for _ in 0..rows {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (x >> 33) % 40;
        let b = (x >> 13) % 40;
        csv.push_str(&format!("{a},{b}\n"));
    }
    csv
}

/// What the server should stream: the same CSV loaded into a fresh
/// local catalog and executed sequentially.
fn expected_csv(csv: &str, query: &str) -> (Vec<String>, String) {
    let mut catalog = Catalog::new();
    let rel = wcoj_query::load_csv(csv, catalog.dictionary()).unwrap();
    catalog.insert("E", rel);
    let q = wcoj_query::parse_query(query).unwrap();
    let result = wcoj_query::execute(&q, &catalog).unwrap();
    let mut body = String::new();
    for row in result.decoded_rows(&catalog) {
        let line: Vec<String> = row.iter().map(|d| format!("{d}")).collect();
        body.push_str(&line.join(","));
        body.push('\n');
    }
    (result.columns, body)
}

// ----------------------------------------------------------- edge cases

#[test]
fn malformed_requests_map_to_precise_statuses() {
    let server = small_caps_server();
    let addr = server.addr();

    // Garbage request line.
    let r = parse_response(&send_raw(addr, b"how about no\r\n\r\n"));
    assert_eq!(r.status, 400, "{}", r.text());

    // Lowercase method token.
    let r = parse_response(&send_raw(addr, b"get /healthz HTTP/1.1\r\n\r\n"));
    assert_eq!(r.status, 400);

    // Relative target.
    let r = parse_response(&send_raw(addr, b"GET healthz HTTP/1.1\r\n\r\n"));
    assert_eq!(r.status, 400);

    // Oversized headers: past the 1 KiB cap → 431.
    let mut big = String::from("GET /healthz HTTP/1.1\r\n");
    big.push_str(&format!("X-Padding: {}\r\n\r\n", "x".repeat(4096)));
    let r = parse_response(&send_raw(addr, big.as_bytes()));
    assert_eq!(r.status, 431);

    // POST without Content-Length → 411.
    let r = parse_response(&send_raw(
        addr,
        b"POST /query HTTP/1.1\r\n\r\nq(x) :- E(x).",
    ));
    assert_eq!(r.status, 411);

    // Content-Length past the 2 KiB body cap → 413, refused up front.
    let r = parse_response(&send_raw(
        addr,
        b"POST /query HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
    ));
    assert_eq!(r.status, 413);

    // Body shorter than Content-Length (half-closed) → 400.
    let r = parse_response(&send_raw(
        addr,
        b"POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
    ));
    assert_eq!(r.status, 400);

    // Malformed Content-Length → 400.
    let r = parse_response(&send_raw(
        addr,
        b"POST /query HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
    ));
    assert_eq!(r.status, 400);

    // And after all that abuse the server still serves.
    let r = request(addr, "GET", "/healthz", None);
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "ok\n");
}

#[test]
fn stalled_and_truncated_requests_do_not_pin_connection_threads() {
    let server = small_caps_server();
    let addr = server.addr();

    // A client that connects, sends half a request line, and stalls: the
    // 300 ms read timeout answers 408 instead of pinning the thread.
    let mut stall = TcpStream::connect(addr).unwrap();
    stall.write_all(b"GET /healthz HT").unwrap();
    let mut out = Vec::new();
    stall.read_to_end(&mut out).unwrap();
    let r = parse_response(&out);
    assert_eq!(r.status, 408);

    // A truncated request (bytes then FIN mid-headers) gets a
    // best-effort 400 and the *next* connection is served normally.
    let r = parse_response(&send_raw(addr, b"GET /healthz HTTP/1.1\r\nX-Trunc: ye"));
    assert_eq!(r.status, 400);
    let r = request(addr, "GET", "/healthz", None);
    assert_eq!(r.status, 200);

    // A silent connect-and-close is a non-event, not an error.
    drop(TcpStream::connect(addr).unwrap());
    let r = request(addr, "GET", "/metrics", None);
    assert_eq!(r.status, 200);
    wcoj_obs::check_exposition(r.text()).expect("valid exposition");
}

// ------------------------------------------------------------ round trip

#[test]
fn query_protocol_round_trip() {
    let server = small_caps_server();
    let addr = server.addr();

    // Load a relation from CSV.
    let csv = "1,2\n2,3\n3,4\n2,4\n";
    let r = request(addr, "PUT", "/relation/E", Some(csv));
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("\"rows\":4"), "{}", r.text());

    // Unknown relations are 404, parse failures 400.
    let r = request(addr, "POST", "/query", Some("q(x) :- Nope(x, y)."));
    assert_eq!(r.status, 404, "{}", r.text());
    let r = request(addr, "POST", "/query", Some("q(x :- E(x, y)."));
    assert_eq!(r.status, 400, "{}", r.text());
    let r = request(addr, "GET", "/query/999/rows", None);
    assert_eq!(r.status, 404);
    let r = request(addr, "GET", "/query/bogus", None);
    assert_eq!(r.status, 404);
    let r = request(addr, "PUT", "/relation/no%20good", Some("1\n"));
    assert_eq!(r.status, 400);

    // Submit a join; the job settles and ?block=1 reports it.
    let query = "path(x, z) :- E(x, y), E(y, z).";
    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 202, "{}", r.text());
    let id = extract_id(r.text());
    let r = request(addr, "GET", &format!("/query/{id}?block=1"), None);
    assert_eq!(r.status, 200);
    assert!(r.text().contains("\"finished\":true"), "{}", r.text());

    // Rows match a local sequential execution of the same query.
    let (columns, expected) = {
        let mut catalog = Catalog::new();
        let rel = wcoj_query::load_csv(csv, catalog.dictionary()).unwrap();
        catalog.insert("E", rel);
        let q = wcoj_query::parse_query(query).unwrap();
        let result = wcoj_query::execute(&q, &catalog).unwrap();
        let mut body = String::new();
        for row in result.decoded_rows(&catalog) {
            let line: Vec<String> = row.iter().map(|d| format!("{d}")).collect();
            body.push_str(&line.join(","));
            body.push('\n');
        }
        (result.columns, body)
    };
    assert_eq!(columns, vec!["x".to_owned(), "z".to_owned()]);
    let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
    assert_eq!(r.status, 200);
    assert!(!r.truncated);
    assert_eq!(r.text(), expected);

    // Fetching again is 410: the stream was consumed.
    let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
    assert_eq!(r.status, 410);
    let r = request(addr, "GET", &format!("/query/{id}"), None);
    assert!(r.text().contains("\"state\":\"done\""), "{}", r.text());

    // A multi-rule Datalog program runs eagerly; its last rule's rows
    // are served as one buffered chunk.
    let program = "two(x, z) :- E(x, y), E(y, z). out(z) :- two(x, z).";
    let r = request(addr, "POST", "/query", Some(program));
    assert_eq!(r.status, 202, "{}", r.text());
    assert!(r.text().contains("\"streaming\":false"), "{}", r.text());
    let pid = extract_id(r.text());
    let r = request(addr, "GET", &format!("/query/{pid}/rows"), None);
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-streaming"), Some("buffered"));
    let mut got: Vec<&str> = r.text().lines().collect();
    got.sort_unstable();
    assert_eq!(got, vec!["3", "4"]);
}

#[test]
fn row_mutation_endpoints_and_pinned_snapshots() {
    let (server, service) = streaming_server(0);
    let addr = server.addr();
    let csv = edge_csv(200);
    let query = "q(x, y) :- E(x, y).";
    let (_, expected_before) = expected_csv(&csv, query);

    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200, "{}", r.text());

    // Mutating an unknown relation is a 404 either way.
    let r = request(addr, "POST", "/relation/Nope/rows", Some("1,2\n"));
    assert_eq!(r.status, 404, "{}", r.text());
    let r = request(addr, "DELETE", "/relation/Nope", None);
    assert_eq!(r.status, 404, "{}", r.text());
    // Arity mismatches are refused before touching the relation.
    let r = request(addr, "POST", "/relation/E/rows", Some("1,2,3\n"));
    assert_eq!(r.status, 400, "{}", r.text());

    // Admit a query while the single worker is occupied, so its rows
    // stream only after the mutations below have landed.
    let heavy = blocker(41);
    let guard = service
        .submit_with_cover(&heavy, None, &service.exec_config())
        .unwrap();
    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 202, "{}", r.text());
    let pinned_id = extract_id(r.text());

    // Rows appended and deleted *after* admission. 1000/1001 are far
    // outside edge_csv's 0..40 key range, so membership is fresh.
    let r = request(addr, "POST", "/relation/E/rows", Some("1000,1001\n"));
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("\"appended\":1"), "{}", r.text());
    let r = request(addr, "DELETE", "/relation/E/rows", Some("1000,1001\n"));
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("\"deleted\":1"), "{}", r.text());
    let r = request(addr, "POST", "/relation/E/rows", Some("1002,1003\n"));
    assert_eq!(r.status, 200, "{}", r.text());
    // Even dropping the relation cannot touch the admitted query: its
    // snapshot holds the pre-mutation catalog alive.
    let r = request(addr, "DELETE", "/relation/E", None);
    assert_eq!(r.status, 200, "{}", r.text());

    drop(guard);
    let r = request(addr, "GET", &format!("/query/{pinned_id}/rows"), None);
    assert_eq!(r.status, 200);
    assert!(!r.truncated);
    assert_eq!(r.text(), expected_before, "pinned snapshot was mutated");

    // A query admitted *after* the mutations sees none of E (dropped),
    // and re-loading plus appending shows appended rows to new queries.
    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 404, "{}", r.text());
    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200);
    let r = request(addr, "POST", "/relation/E/rows", Some("1000,1001\n"));
    assert_eq!(r.status, 200, "{}", r.text());
    let with_appended = {
        let mut csv2 = csv.clone();
        csv2.push_str("1000,1001\n");
        expected_csv(&csv2, query).1
    };
    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 202, "{}", r.text());
    let id = extract_id(r.text());
    let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), with_appended);

    // The catalog's delta/snapshot metrics made it to the exposition.
    let r = request(addr, "GET", "/metrics", None);
    assert_eq!(r.status, 200);
    assert!(
        r.text().contains("wcoj_catalog_deltas_total"),
        "missing delta counter"
    );
    assert!(
        r.text().contains("wcoj_catalog_snapshot_age_ms"),
        "missing snapshot age gauge"
    );
}

fn extract_id(json: &str) -> u64 {
    let tail = json.split("\"id\":").nth(1).expect("id field");
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric id")
}

// ------------------------------------------------- streaming edge cases

#[test]
fn concurrent_rows_fetches_conflict_then_settle() {
    let (server, service) = streaming_server(0);
    let addr = server.addr();
    let csv = edge_csv(200);
    let query = "q(x, y) :- E(x, y).";
    let (_, expected) = expected_csv(&csv, query);

    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200, "{}", r.text());

    // Occupy the single worker so the streamed query's slots settle
    // one by one behind the blocker's shards.
    let heavy = blocker(23);
    let guard = service
        .submit_with_cover(&heavy, None, &service.exec_config())
        .unwrap();

    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 202, "{}", r.text());
    assert!(r.text().contains("\"streaming\":true"), "{}", r.text());
    let id = extract_id(r.text());

    // Connection A starts the row fetch (blocks server-side on the
    // first slot); once dispatched, a second fetch must be refused.
    let reader = std::thread::spawn({
        let path = format!("/query/{id}/rows");
        move || request(addr, "GET", &path, None)
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = request(addr, "GET", &format!("/query/{id}"), None);
        assert_eq!(r.status, 200);
        if r.text().contains("\"state\":\"streaming\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started streaming");
        std::thread::sleep(Duration::from_millis(2));
    }
    let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
    assert_eq!(r.status, 409, "{}", r.text());

    // Free the worker; A's stream completes bit-identically to the
    // sequential run, and a later fetch is 410.
    drop(guard);
    let streamed = reader.join().expect("reader thread");
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.header("x-streaming"), Some("incremental"));
    assert!(!streamed.truncated);
    assert_eq!(streamed.text(), expected);
    let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
    assert_eq!(r.status, 410);
}

#[test]
fn mid_stream_disconnect_cancels_and_frees_the_admission_slot() {
    let (server, service) = streaming_server(0);
    let addr = server.addr();
    let csv = edge_csv(200);

    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200, "{}", r.text());

    let heavy = blocker(29);
    let guard = service
        .submit_with_cover(&heavy, None, &service.exec_config())
        .unwrap();
    let base = service.counters().cancelled;

    let r = request(addr, "POST", "/query", Some("q(x, y) :- E(x, y)."));
    assert_eq!(r.status, 202, "{}", r.text());
    let id = extract_id(r.text());

    // Read the response headers + first chunk, then vanish. The
    // server's next chunk write fails, which must drop the pending
    // query — cancelling its remaining slots and freeing the admission
    // slot — rather than leak it.
    let mut victim = TcpStream::connect(addr).unwrap();
    victim
        .write_all(format!("GET /query/{id}/rows HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let mut first = [0u8; 512];
    let n = victim.read(&mut first).unwrap();
    assert!(n > 0, "headers never arrived");
    drop(victim);

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if service.counters().cancelled > base {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the query: {:?}",
            service.counters()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let r = request(addr, "GET", &format!("/query/{id}"), None);
    assert!(
        r.text().contains("\"state\":\"failed\"") && r.text().contains("499"),
        "{}",
        r.text()
    );

    // Everything drains: no leaked in-flight query, and the skipped
    // shard tasks show the cancellation actually saved pool time.
    drop(guard);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let c = service.counters();
        if c.in_flight == 0 && c.queued_tasks == 0 {
            assert!(c.skipped_tasks >= 1, "{c:?}");
            break;
        }
        assert!(Instant::now() < deadline, "service never drained: {c:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ------------------------------------------------------------ keep-alive

/// Reads exactly one fixed-length response off an open connection,
/// leaving the stream usable for the next request.
fn read_one(stream: &mut TcpStream) -> Response {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
            let want: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().expect("numeric length"))
                })
                .unwrap_or(0);
            if raw.len() >= head_end + 4 + want {
                return parse_response(&raw[..head_end + 4 + want]);
            }
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "connection closed mid-response");
        raw.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let server = small_caps_server();
    let addr = server.addr();

    // Several requests ride one connection; each response advertises
    // the fate the server will follow.
    let mut stream = TcpStream::connect(addr).unwrap();
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: loopback\r\n\r\n")
            .unwrap();
        let r = read_one(&mut stream);
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
        assert_eq!(r.text(), "ok\n");
    }

    // `Connection: close` is honoured: the response says close and the
    // server hangs up.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let r = read_one(&mut stream);
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after a Connection: close response");

    // Two requests pipelined in one write both get answered (the bytes
    // past the first request's body carry over as the second request).
    let raw = send_raw(
        addr,
        b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
    );
    let first_len = {
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        head_end + 3 // "ok\n"
    };
    let first = parse_response(&raw[..first_len]);
    let second = parse_response(&raw[first_len..]);
    assert_eq!((first.status, first.text()), (200, "ok\n"));
    assert_eq!((second.status, second.text()), (200, "ok\n"));
}

#[test]
fn keep_alive_budget_and_idle_timeout_close_the_connection() {
    let cfg = ServerConfig {
        bind: "127.0.0.1:0".parse().unwrap(),
        conn_threads: 2,
        read_timeout: Some(Duration::from_millis(300)),
        keep_alive_max: 2,
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(cfg, Catalog::new()).expect("bind loopback");
    let addr = server.addr();

    // The budget's last response says close, and the server hangs up.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(
        read_one(&mut stream).header("connection"),
        Some("keep-alive")
    );
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_one(&mut stream).header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "served past the keep-alive budget");

    // A kept-alive connection that goes idle is closed silently — no
    // 408, no bytes, just EOF once the idle timeout lapses.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_one(&mut idle).status, 200);
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "idle expiry must close silently");
}

#[test]
fn overload_maps_to_429_with_retry_after() {
    let (server, service) = streaming_server(2);
    let addr = server.addr();
    let r = request(addr, "PUT", "/relation/E", Some(&edge_csv(200)));
    assert_eq!(r.status, 200);

    // Fill both admission slots with blockers submitted out-of-band.
    let g1 = service
        .submit_with_cover(&blocker(31), None, &service.exec_config())
        .unwrap();
    let g2 = service
        .submit_with_cover(&blocker(37), None, &service.exec_config())
        .unwrap();

    let shed_before = service.counters().shed;
    let r = request(addr, "POST", "/query", Some("q(x, y) :- E(x, y)."));
    assert_eq!(r.status, 429, "{}", r.text());
    assert_eq!(r.header("retry-after"), Some("1"));
    assert_eq!(service.counters().shed, shed_before + 1);

    drop(g1);
    drop(g2);
}
