//! Criterion bench for intra-value parallelism: a single-hot-key
//! workload (one root value carrying ≥ 90% of the estimated work —
//! `wcoj_datagen::hot_key_triangle`) evaluated by `par_join_prepared` at
//! 1–8 threads, with the anchor sub-shard splitter on (default) and off
//! (`heavy_split_factor: 0`, PR 2's singleton isolation) so the split's
//! contribution is measurable in isolation. Preparation is shared so
//! only planning + evaluation are timed.
//!
//! On a single-core host all rows read ≈ the 1-thread time; re-measure
//! on multi-core hardware (see `crates/service/README.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_exec::{par_join_prepared, ExecConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_heavy_key_scaling");
    g.sample_size(10);

    let instances = [
        ("hot_key_256", wcoj_datagen::hot_key_triangle(41, 256, 8)),
        ("hot_key_512", wcoj_datagen::hot_key_triangle(42, 512, 8)),
    ];
    for (name, rels) in &instances {
        let prepared = PreparedQuery::new(rels).expect("well-formed instance");
        for threads in [1usize, 2, 4, 8] {
            for (mode, factor) in [
                ("split", ExecConfig::default().heavy_split_factor),
                ("nosplit", 0),
            ] {
                let cfg = ExecConfig {
                    threads,
                    shard_min_size: 1,
                    heavy_split_factor: factor,
                    ..ExecConfig::default()
                };
                g.bench_with_input(
                    BenchmarkId::new(format!("{name}/{mode}"), threads),
                    &cfg,
                    |b, cfg| {
                        b.iter(|| {
                            par_join_prepared(&prepared, None, cfg)
                                .expect("join succeeds")
                                .relation
                                .len()
                        });
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
