//! Criterion bench for experiment E3 (Theorem 4.1): LW algorithm scaling
//! on random Loomis–Whitney instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_lw_scaling");
    g.sample_size(10);
    for n_attr in [3usize, 4] {
        for rows in [500usize, 2000] {
            let dom = (rows as f64).powf(1.0 / (n_attr as f64 - 1.0)).ceil() as u64 * 2;
            let rels = wcoj_datagen::random_lw(7, n_attr, rows, dom.max(4));
            let id = format!("n{n_attr}_rows{rows}");
            g.bench_with_input(BenchmarkId::new("lw", &id), &rels, |b, rels| {
                b.iter(|| join_with(rels, Algorithm::Lw, None).unwrap().relation.len());
            });
            g.bench_with_input(BenchmarkId::new("nprr", &id), &rels, |b, rels| {
                b.iter(|| {
                    join_with(rels, Algorithm::Nprr, None)
                        .unwrap()
                        .relation
                        .len()
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
