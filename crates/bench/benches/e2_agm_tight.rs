//! Criterion bench for experiment E2: enumerating the AGM-tight grid
//! triangle (output = N^{3/2}, so runtime is output-bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_agm_tight");
    g.sample_size(10);
    for k in [8u64, 16, 24] {
        let rels = wcoj_datagen::agm_tight_triangle(k);
        g.bench_with_input(BenchmarkId::new("lw", k), &rels, |b, rels| {
            b.iter(|| join_with(rels, Algorithm::Lw, None).unwrap().relation.len());
        });
        g.bench_with_input(BenchmarkId::new("nprr", k), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
