//! Criterion bench for experiment E6 (Theorem 5.1): NPRR vs an optimized
//! binary plan on general hypergraph queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_baselines::{optimize_left_deep, plan::execute_left_deep};
use wcoj_core::{join_with, Algorithm};
use wcoj_storage::Relation;

fn bench(c: &mut Criterion) {
    let shapes: &[(&str, &[&[u32]])] = &[
        ("triangle", &[&[0, 1], &[1, 2], &[0, 2]]),
        ("lw4", &[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3], &[0, 1, 2]]),
        (
            "figure2",
            &[
                &[0, 1, 3, 4],
                &[0, 2, 3, 5],
                &[0, 1, 2],
                &[1, 3, 5],
                &[2, 4, 5],
            ],
        ),
    ];
    let mut g = c.benchmark_group("e6_nprr_general");
    g.sample_size(10);
    for (si, (name, shape)) in shapes.iter().enumerate() {
        let rels: Vec<Relation> = shape
            .iter()
            .enumerate()
            .map(|(i, attrs)| wcoj_datagen::random_relation((si * 7 + i) as u64, attrs, 600, 12))
            .collect();
        let order = optimize_left_deep(&rels);
        g.bench_with_input(BenchmarkId::new("nprr", name), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(
            BenchmarkId::new("binary_optimized", name),
            &(rels, order),
            |b, (rels, order)| {
                b.iter(|| execute_left_deep(rels, order).unwrap().0.len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
