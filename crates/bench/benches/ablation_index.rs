//! Ablation: sorted counted trie vs hash-trie vs flat columnar
//! realisation of the paper's search tree (§5.1 offers them as
//! interchangeable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::{join_nprr, join_nprr_flat, join_nprr_hash};
use wcoj_core::JoinQuery;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_index");
    g.sample_size(10);
    for rows in [1_000usize, 4_000] {
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], rows, 48),
            wcoj_datagen::random_relation(2, &[1, 2], rows, 48),
            wcoj_datagen::random_relation(3, &[0, 2], rows, 48),
        ];
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        g.bench_with_input(BenchmarkId::new("sorted_trie", rows), &(), |b, ()| {
            b.iter(|| {
                join_nprr(&q, &sol.x, sol.log2_bound)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("hash_trie", rows), &(), |b, ()| {
            b.iter(|| {
                join_nprr_hash(&q, &sol.x, sol.log2_bound)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("flat_trie", rows), &(), |b, ()| {
            b.iter(|| {
                join_nprr_flat(&q, &sol.x, sol.log2_bound)
                    .unwrap()
                    .relation
                    .len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
