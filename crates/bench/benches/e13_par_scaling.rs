//! Criterion bench for the partition-parallel executor: triangle-hard
//! (Example 2.2) and 4-cycle instances at 1/2/4/8 worker threads, sharing
//! one preparation per instance so only evaluation is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_exec::{par_join_prepared, ExecConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_par_scaling");
    g.sample_size(10);

    let instances = [
        ("triangle_hard", wcoj_datagen::example_2_2(2048)),
        ("cycle4", wcoj_datagen::cycle_instance(13, 4, 3000, 250)),
    ];
    for (name, rels) in &instances {
        let prepared = PreparedQuery::new(rels).expect("well-formed instance");
        for threads in [1usize, 2, 4, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(*name, threads), &cfg, |b, cfg| {
                b.iter(|| {
                    par_join_prepared(&prepared, None, cfg)
                        .expect("join succeeds")
                        .relation
                        .len()
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
