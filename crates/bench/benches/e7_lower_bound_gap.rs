//! Criterion bench for experiment E7 (Lemmas 6.1/6.2): the asymptotic gap
//! between the best binary plan and NPRR on "simple" LW instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_baselines::plan::execute_left_deep;
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_lower_bound_gap");
    g.sample_size(10);
    for n in [128u64, 512, 1024] {
        let rels = wcoj_datagen::simple_lw(3, n);
        // all left-deep orders are symmetric on this family; use identity.
        g.bench_with_input(BenchmarkId::new("binary_plan", n), &rels, |b, rels| {
            b.iter(|| execute_left_deep(rels, &[0, 1, 2]).unwrap().0.len());
        });
        g.bench_with_input(BenchmarkId::new("nprr", n), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("lw", n), &rels, |b, rels| {
            b.iter(|| join_with(rels, Algorithm::Lw, None).unwrap().relation.len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
