//! Criterion bench for experiment E12 (§7.3): FD-aware joining vs the
//! FD-blind worst join order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_baselines::plan::execute_left_deep;
use wcoj_core::fd::{join_with_fds, Fd};
use wcoj_storage::Attr;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_fd");
    g.sample_size(10);
    for k in [2u32, 3] {
        let n = 256usize;
        let (rels, triples) = wcoj_datagen::fd_family(11, k, n);
        let fds: Vec<Fd> = triples
            .iter()
            .map(|&(edge, from, to)| Fd {
                edge,
                from: Attr(from),
                to: Attr(to),
            })
            .collect();
        let wrong_order: Vec<usize> = (k as usize..2 * k as usize).chain(0..k as usize).collect();
        g.bench_with_input(
            BenchmarkId::new("fd_aware", k),
            &(rels.clone(), fds),
            |b, (rels, fds)| {
                b.iter(|| join_with_fds(rels, fds).unwrap().relation.len());
            },
        );
        g.bench_with_input(
            BenchmarkId::new("fd_blind_wrong_order", k),
            &(rels, wrong_order),
            |b, (rels, order)| {
                b.iter(|| execute_left_deep(rels, order).unwrap().0.len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
