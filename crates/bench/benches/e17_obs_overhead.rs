//! Criterion bench for the observability overhead bound (ISSUE 6
//! acceptance: ≤ 2% on service throughput): the same mixed seed-family
//! batch through two identically-sized services, one with
//! `ServiceConfig::obs` on (per-task timestamps + registry updates) and
//! one with it off (the no-op path). Preparations are shared so only
//! scheduling + evaluation + instrumentation are measured.
//!
//! CI runs single-core, where a multi-worker pool mostly measures context
//! switching; the default shape keeps `workers = 2`, `concurrency = 4`
//! small for a stable signal. Set `WCOJ_BENCH_WORKERS` (e.g. `8`) to
//! re-measure on a multi-core box.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_exec::ExecConfig;
use wcoj_service::{Service, ServiceConfig};

fn workers() -> usize {
    std::env::var("WCOJ_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2)
}

fn run_batch(service: &Service, cfg: &ExecConfig, prepared: &[Arc<PreparedQuery>]) -> usize {
    let concurrency = 4;
    let mut total = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|i| {
                scope.spawn(move || {
                    let q = i % prepared.len();
                    service
                        .submit(&prepared[q], cfg)
                        .expect("submit")
                        .wait()
                        .expect("join")
                        .relation
                        .len()
                })
            })
            .collect();
        for h in handles {
            total += h.join().expect("submitter thread");
        }
    });
    total
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_obs_overhead");
    g.sample_size(20);

    let instances = [
        ("triangle_hard", wcoj_datagen::example_2_2(256)),
        ("cycle4", wcoj_datagen::cycle_instance(13, 4, 400, 60)),
        (
            "zipf_triangle",
            vec![
                wcoj_datagen::zipf_relation(21, &[0, 1], 400, 48, 1.2),
                wcoj_datagen::zipf_relation(22, &[1, 2], 400, 48, 1.2),
                wcoj_datagen::zipf_relation(23, &[0, 2], 400, 48, 1.2),
            ],
        ),
    ];
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();

    let workers = workers();
    for (label, obs) in [("obs_on", true), ("obs_off", false)] {
        let service = Service::new(ServiceConfig::with_workers(workers).with_obs(obs));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        g.bench_with_input(BenchmarkId::new(label, workers), &(), |b, ()| {
            b.iter(|| run_batch(&service, &cfg, &prepared));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
