//! Criterion bench for experiment E1 (Example 2.2): binary plans vs
//! LW/NPRR on the empty-output hard triangle family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_baselines::plan::execute_left_deep;
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_triangle_hard");
    g.sample_size(10);
    for n in [128u64, 512, 2048] {
        let rels = wcoj_datagen::example_2_2(n);
        g.bench_with_input(BenchmarkId::new("binary_plan", n), &rels, |b, rels| {
            b.iter(|| {
                execute_left_deep(rels, &[0, 1, 2])
                    .unwrap()
                    .1
                    .max_intermediate
            });
        });
        g.bench_with_input(BenchmarkId::new("lw", n), &rels, |b, rels| {
            b.iter(|| join_with(rels, Algorithm::Lw, None).unwrap().relation.len());
        });
        g.bench_with_input(BenchmarkId::new("nprr", n), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
