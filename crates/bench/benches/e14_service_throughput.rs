//! Criterion bench for the shared-pool query service: a fixed batch of
//! mixed seed-family queries submitted at varying concurrency onto one
//! `Service`, timing submit-to-wait for the whole batch. Preparations are
//! shared so only scheduling + evaluation are measured.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_exec::ExecConfig;
use wcoj_service::{Service, ServiceConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_service_throughput");
    g.sample_size(10);

    let instances = [
        ("triangle_hard", wcoj_datagen::example_2_2(256)),
        ("cycle4", wcoj_datagen::cycle_instance(13, 4, 400, 60)),
        (
            "zipf_triangle",
            vec![
                wcoj_datagen::zipf_relation(21, &[0, 1], 400, 48, 1.2),
                wcoj_datagen::zipf_relation(22, &[1, 2], 400, 48, 1.2),
                wcoj_datagen::zipf_relation(23, &[0, 2], 400, 48, 1.2),
            ],
        ),
    ];
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();

    let service = Service::new(ServiceConfig::with_workers(4));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    for concurrency in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("batch", concurrency),
            &concurrency,
            |b, &concurrency| {
                b.iter(|| {
                    let mut total = 0usize;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..concurrency)
                            .map(|i| {
                                let service = &service;
                                let cfg = &cfg;
                                let prepared = &prepared;
                                scope.spawn(move || {
                                    let q = i % prepared.len();
                                    service
                                        .submit(&prepared[q], cfg)
                                        .expect("submit")
                                        .wait()
                                        .expect("join")
                                        .relation
                                        .len()
                                })
                            })
                            .collect();
                        for h in handles {
                            total += h.join().expect("submitter thread");
                        }
                    });
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
