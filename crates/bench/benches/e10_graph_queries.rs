//! Criterion bench for experiment E10 (Theorem 7.3): mixed arity-≤2
//! queries through the half-integral star/cycle path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::{join_with, naive, Algorithm};
use wcoj_storage::Relation;

fn bench(c: &mut Criterion) {
    let shapes: &[&[u32]] = &[&[0, 1], &[1, 2], &[0, 2], &[2, 3], &[3, 4], &[0, 5]];
    let mut g = c.benchmark_group("e10_graph_queries");
    g.sample_size(10);
    for rows in [200usize, 600] {
        let rels: Vec<Relation> = shapes
            .iter()
            .enumerate()
            .map(|(i, attrs)| wcoj_datagen::random_relation(i as u64, attrs, rows, 10))
            .collect();
        g.bench_with_input(BenchmarkId::new("graph_join", rows), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::GraphJoin, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("naive", rows), &rels, |b, rels| {
            b.iter(|| naive::join(rels).len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
