//! Criterion bench for service admission control: a fixed batch of mixed
//! queries flooded from 8 submitter threads onto a 2-worker service,
//! bounded (queue depth 4, shed-and-retry) vs unbounded. Measures batch
//! submit-to-wait wall time — the cost/benefit of backpressure is the
//! *difference* between the two rows (on a loaded machine the bounded
//! queue trades raw throughput for bounded memory and flat worker-side
//! latency; on an idle one the rows should be close).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_exec::ExecConfig;
use wcoj_service::{Service, ServiceConfig, SubmitError};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_overload_shedding");
    g.sample_size(10);

    let instances = [
        ("triangle_hard", wcoj_datagen::example_2_2(192)),
        ("cycle4", wcoj_datagen::cycle_instance(13, 4, 300, 50)),
        (
            "zipf_triangle",
            vec![
                wcoj_datagen::zipf_relation(21, &[0, 1], 300, 40, 1.2),
                wcoj_datagen::zipf_relation(22, &[1, 2], 300, 40, 1.2),
                wcoj_datagen::zipf_relation(23, &[0, 2], 300, 40, 1.2),
            ],
        ),
    ];
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();

    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 3;
    for (label, queue_depth) in [("bounded_depth4", 4usize), ("unbounded", 0)] {
        let service = Service::new(ServiceConfig::with_workers(2).with_queue_depth(queue_depth));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        g.bench_with_input(BenchmarkId::new(label, SUBMITTERS), &queue_depth, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..SUBMITTERS)
                        .map(|i| {
                            let service = &service;
                            let cfg = &cfg;
                            let prepared = &prepared;
                            scope.spawn(move || {
                                let mut rows = 0usize;
                                for j in 0..PER_SUBMITTER {
                                    let q = (i + j) % prepared.len();
                                    // shed-and-retry: overload delays the
                                    // submitter, loses nothing
                                    let handle = loop {
                                        match service.submit(&prepared[q], cfg) {
                                            Ok(h) => break h,
                                            Err(SubmitError::Overloaded { .. }) => {
                                                std::thread::yield_now();
                                            }
                                            Err(e) => panic!("submit: {e}"),
                                        }
                                    };
                                    rows += handle.wait().expect("join").relation.len();
                                }
                                rows
                            })
                        })
                        .collect();
                    for h in handles {
                        total += h.join().expect("submitter thread");
                    }
                });
                total
            });
        });
        // context for the shed column of harness experiment e19
        eprintln!(
            "e16_overload_shedding/{label}: lifetime sheds so far = {}",
            service.counters().shed
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
