//! Criterion bench for experiment E9 (Lemma 7.1): cycle queries via the
//! star/odd-cycle decomposition vs binary plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_baselines::plan::execute_left_deep;
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_cycles");
    g.sample_size(10);
    for m in [4usize, 5, 7] {
        let n: usize = match m {
            4 => 600,
            5 => 300,
            _ => 80,
        };
        let dom = (n as f64).sqrt().ceil() as u64 * 2;
        let rels = wcoj_datagen::cycle_instance(m as u64, m, n, dom);
        let order: Vec<usize> = (0..m).collect();
        g.bench_with_input(BenchmarkId::new("graph_join", m), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::GraphJoin, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(
            BenchmarkId::new("binary_plan", m),
            &(rels, order),
            |b, (rels, order)| {
                b.iter(|| execute_left_deep(rels, order).unwrap().0.len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
