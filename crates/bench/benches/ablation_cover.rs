//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Cover quality** — NPRR run with the LP-optimal fractional cover vs
//!    the always-feasible all-ones cover (§2: the bound, and hence the
//!    work budget, degrades from `N^{3/2}` to `N³` on triangles);
//! 2. **Preparation amortisation** — one-shot `join_nprr` (which builds
//!    the QP tree and all tries per call) vs [`PreparedQuery`] evaluation
//!    (Remark 5.2's "index in advance", removing the `O(n²ΣN)` term).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::{join_with, Algorithm};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cover");
    g.sample_size(10);
    for n in [512u64, 2048] {
        let rels = wcoj_datagen::example_2_2(n);
        g.bench_with_input(BenchmarkId::new("optimal_cover", n), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("all_ones_cover", n), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, Some(&[1.0, 1.0, 1.0]))
                    .unwrap()
                    .relation
                    .len()
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_prepare");
    g.sample_size(10);
    for rows in [2_000usize, 8_000] {
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], rows, 64),
            wcoj_datagen::random_relation(2, &[1, 2], rows, 64),
            wcoj_datagen::random_relation(3, &[0, 2], rows, 64),
        ];
        g.bench_with_input(BenchmarkId::new("one_shot", rows), &rels, |b, rels| {
            b.iter(|| {
                join_with(rels, Algorithm::Nprr, None)
                    .unwrap()
                    .relation
                    .len()
            });
        });
        let prepared = PreparedQuery::new(&rels).unwrap();
        let cover = prepared.query().optimal_cover().unwrap().x;
        g.bench_with_input(
            BenchmarkId::new("prepared", rows),
            &(prepared, cover),
            |b, (prepared, cover)| {
                b.iter(|| prepared.evaluate(Some(cover)).unwrap().relation.len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
