//! Experiment harness: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! harness [--quick] [--json DIR] [e1 e2 …]
//! ```
//!
//! With no experiment ids, runs every experiment (e1–e22). `--quick`
//! shrinks sweeps, `--json DIR` additionally writes each table as JSON.

use std::io::Write as _;
use wcoj_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let mut quick = false;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => {
                json_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: harness [--quick] [--json DIR] [e1 e2 …]");
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|&s| s.to_owned()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment {id}; known: {}",
                ALL_EXPERIMENTS.join(" ")
            );
            std::process::exit(2);
        }
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    for id in &ids {
        let tables = run_experiment(id, quick);
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &json_dir {
                let path = format!("{dir}/{id}_{i}.json");
                let mut f = std::fs::File::create(&path).expect("create json file");
                f.write_all(t.to_json().as_bytes()).expect("write json");
            }
        }
    }
}
