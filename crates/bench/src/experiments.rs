//! The fifteen experiments of `DESIGN.md` §4. Each function regenerates
//! one of the paper's quantitative claims; sizes are chosen so the full
//! suite runs in a couple of minutes on a laptop.

use crate::table::{ms, time_secs, Table};
use wcoj_baselines::plan::execute_left_deep;
use wcoj_baselines::{best_actual_left_deep, optimize_left_deep};
use wcoj_core::nprr::qptree::build_qp_tree;
use wcoj_core::nprr::total_order::total_order;
use wcoj_core::{bt, fd, fullcq, graph_join, join_with, naive, relaxed, Algorithm, JoinQuery};
use wcoj_datagen as gen;
use wcoj_hypergraph::agm;
use wcoj_hypergraph::tighten::tighten;
use wcoj_rational::Rational;
use wcoj_storage::{Attr, Relation};

fn sweep(quick: bool, full: &[u64], short: &[u64]) -> Vec<u64> {
    if quick {
        short.to_vec()
    } else {
        full.to_vec()
    }
}

/// E1 — Example 2.2 / §1: binary plans pay Θ(N²) on the hard triangle
/// family while LW/NPRR stay near-linear.
#[must_use]
pub fn e1_triangle_hard(quick: bool) -> Vec<Table> {
    let ns = sweep(quick, &[64, 128, 256, 512, 1024, 2048], &[64, 128]);
    let mut t = Table::new(
        "e1",
        "Example 2.2: binary join Θ(N²) vs LW/NPRR ~O(N) on the empty-output triangle",
        &[
            "N",
            "pairwise_join",
            "binary_ms",
            "lw_ms",
            "nprr_ms",
            "output",
        ],
        "pairwise_join = N²/4 + N/2; binary_ms grows ~4× per doubling, lw/nprr ~2×",
    );
    // Generate all instances up front (generation is untimed); scoped
    // threads fan the independent points out across cores.
    let instances: Vec<(u64, Vec<Relation>)> = std::thread::scope(|s| {
        let handles: Vec<_> = ns
            .iter()
            .map(|&n| s.spawn(move || (n, gen::example_2_2(n))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gen"))
            .collect()
    });
    for (n, rels) in instances {
        let ((_, bstats), t_bin) = time_secs(|| execute_left_deep(&rels, &[0, 1, 2]).unwrap());
        let (lw_out, t_lw) = time_secs(|| join_with(&rels, Algorithm::Lw, None).unwrap());
        let (nprr_out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
        assert!(lw_out.relation.is_empty() && nprr_out.relation.is_empty());
        t.row(vec![
            n.to_string(),
            bstats.max_intermediate.to_string(),
            ms(t_bin),
            ms(t_lw),
            ms(t_nprr),
            "0".to_string(),
        ]);
    }
    vec![t]
}

/// E2 — AGM tightness: the `[k]×[k]` triangle instance attains
/// `|q(I)| = N^{3/2}` exactly and our algorithms enumerate it within the
/// bound.
#[must_use]
pub fn e2_agm_tight(quick: bool) -> Vec<Table> {
    let ks = sweep(quick, &[4, 8, 12, 16, 20], &[4, 8]);
    let mut t = Table::new(
        "e2",
        "AGM tightness: grid triangle attains N^(3/2)",
        &[
            "k",
            "N=k^2",
            "output",
            "N^1.5",
            "agm_bound",
            "lw_ms",
            "nprr_ms",
        ],
        "output = N^1.5 = agm_bound exactly, for every k",
    );
    for k in ks {
        let rels = gen::agm_tight_triangle(k);
        let n = (k * k) as f64;
        let (lw_out, t_lw) = time_secs(|| join_with(&rels, Algorithm::Lw, None).unwrap());
        let (nprr_out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
        assert_eq!(lw_out.relation.len(), nprr_out.relation.len());
        let bound = agm::best_bound(
            JoinQuery::new(&rels).unwrap().hypergraph(),
            &rels.iter().map(Relation::len).collect::<Vec<_>>(),
        )
        .unwrap();
        t.row(vec![
            k.to_string(),
            format!("{}", k * k),
            lw_out.relation.len().to_string(),
            format!("{:.0}", n.powf(1.5)),
            format!("{bound:.0}"),
            ms(t_lw),
            ms(t_nprr),
        ]);
    }
    vec![t]
}

/// E3 — Theorem 4.1: LW-algorithm scaling on random LW instances.
#[must_use]
pub fn e3_lw_scaling(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    for n_attr in [3usize, 4] {
        let ns = sweep(quick, &[250, 500, 1000, 2000, 4000], &[150, 300]);
        let mut t = Table::new(
            "e3",
            &format!("Theorem 4.1: LW algorithm on random LW(n={n_attr}) instances"),
            &["N", "bound=(∏N)^(1/(n-1))", "output", "lw_ms", "naive_ms"],
            "lw_ms grows like the bound column (≈N^{n/(n-1)}), not like naive blowups",
        );
        for (i, n) in ns.iter().enumerate() {
            let dom = (*n as f64).powf(1.0 / (n_attr as f64 - 1.0)).ceil() as u64 * 2;
            let rels = gen::random_lw(42 + i as u64, n_attr, *n as usize, dom.max(4));
            let sizes: Vec<usize> = rels.iter().map(Relation::len).collect();
            let bound = sizes.iter().map(|&s| (s as f64).ln()).sum::<f64>() / (n_attr as f64 - 1.0);
            let (out, t_lw) = time_secs(|| join_with(&rels, Algorithm::Lw, None).unwrap());
            let (nv, t_naive) = time_secs(|| naive::join(&rels));
            assert_eq!(out.relation.len(), nv.len());
            t.row(vec![
                n.to_string(),
                format!("{:.0}", bound.exp()),
                out.relation.len().to_string(),
                ms(t_lw),
                ms(t_naive),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// E4 — §5.2 worked example: run NPRR on the 6-attribute query, verify the
/// output against the oracle and the AGM budget.
#[must_use]
pub fn e4_worked_example() -> Vec<Table> {
    e4_impl(&[200, 400, 800])
}

fn e4_impl(sizes: &[usize]) -> Vec<Table> {
    let mut t = Table::new(
        "e4",
        "§5.2 worked example: 5 relations over 6 attributes",
        &["N", "agm_log2", "output", "nprr_ms", "naive_ms", "matches"],
        "output ≤ 2^agm_log2; NPRR matches the oracle",
    );
    for (i, n) in sizes.iter().enumerate() {
        let rels = gen::worked_example(7 + i as u64, *n, 6);
        let (out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
        let (nv, t_naive) = time_secs(|| naive::join(&rels));
        let ok = out.relation.len() == nv.len();
        t.row(vec![
            n.to_string(),
            format!("{:.1}", out.stats.log2_agm_bound),
            out.relation.len().to_string(),
            ms(t_nprr),
            ms(t_naive),
            ok.to_string(),
        ]);
    }
    vec![t]
}

/// E5 — Figure 2: the QP tree and the paper's total order `1,4,2,5,3,6`.
#[must_use]
pub fn e5_figure2_tree() -> Vec<Table> {
    let rels = gen::worked_example(1, 10, 3);
    let q = JoinQuery::new(&rels).unwrap();
    let tree = build_qp_tree(q.hypergraph()).expect("non-degenerate");
    let order = total_order(&tree);
    let order_1based: Vec<String> = order.iter().map(|v| (v + 1).to_string()).collect();
    let mut t = Table::new(
        "e5",
        "Figure 2: query plan tree and total order of the §5.2 example",
        &["property", "value"],
        "total order = 1,4,2,5,3,6 (paper §5.2); root splits {1,2,4} / {3,5,6}",
    );
    t.row(vec!["total_order".into(), order_1based.join(",")]);
    t.row(vec!["tree_size".into(), tree.size().to_string()]);
    t.row(vec!["tree_height".into(), tree.height().to_string()]);
    for (i, line) in tree.render().lines().enumerate() {
        t.row(vec![format!("tree[{i}]"), line.trim_end().to_owned()]);
    }
    assert_eq!(order, vec![0, 3, 1, 4, 2, 5], "paper's total order");
    vec![t]
}

/// E6 — Theorem 5.1: NPRR output ≤ AGM bound on assorted random
/// hypergraph queries, timing vs the binary-plan baseline.
#[must_use]
pub fn e6_nprr_general(quick: bool) -> Vec<Table> {
    let shapes: &[(&str, &[&[u32]])] = &[
        ("triangle", &[&[0, 1], &[1, 2], &[0, 2]]),
        ("lw4", &[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3], &[0, 1, 2]]),
        ("4cycle", &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]),
        ("mixed", &[&[0, 1, 2], &[2, 3], &[0, 3], &[1, 3]]),
        (
            "figure2",
            &[
                &[0, 1, 3, 4],
                &[0, 2, 3, 5],
                &[0, 1, 2],
                &[1, 3, 5],
                &[2, 4, 5],
            ],
        ),
    ];
    let rows_per_rel = if quick { 100 } else { 800 };
    let mut t = Table::new(
        "e6",
        "Theorem 5.1: NPRR respects the AGM bound on general queries",
        &[
            "shape",
            "agm_log2",
            "out_log2",
            "nprr_ms",
            "binary_ms",
            "within_bound",
        ],
        "out_log2 ≤ agm_log2 on every row; nprr competitive with the optimized binary plan",
    );
    for (si, (name, shape)) in shapes.iter().enumerate() {
        let rels: Vec<Relation> = shape
            .iter()
            .enumerate()
            .map(|(i, attrs)| gen::random_relation((si * 10 + i) as u64, attrs, rows_per_rel, 12))
            .collect();
        let (out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
        let order = optimize_left_deep(&rels);
        let ((bout, _), t_bin) = time_secs(|| execute_left_deep(&rels, &order).unwrap());
        assert_eq!(out.relation.len(), bout.len());
        let out_log2 = if out.relation.is_empty() {
            f64::NEG_INFINITY
        } else {
            (out.relation.len() as f64).log2()
        };
        t.row(vec![
            (*name).to_owned(),
            format!("{:.2}", out.stats.log2_agm_bound),
            if out_log2.is_finite() {
                format!("{out_log2:.2}")
            } else {
                "-inf".into()
            },
            ms(t_nprr),
            ms(t_bin),
            (out_log2 <= out.stats.log2_agm_bound + 1e-6).to_string(),
        ]);
    }
    vec![t]
}

/// E7 — Lemmas 6.1/6.2: on "simple" LW instances every binary plan (even
/// with oracle ordering) materialises Ω(N²/n²) while NPRR touches O(n²N).
#[must_use]
pub fn e7_lower_bound_gap(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    let attr_counts: &[usize] = if quick { &[3, 4] } else { &[3, 4, 6] };
    for &n_attr in attr_counts {
        let ns = sweep(quick, &[64, 128, 256, 512, 1024], &[32, 64]);
        let mut t = Table::new(
            "e7",
            &format!("Lemma 6.1/6.2 gap, n={n_attr}: oracle binary plan vs NPRR"),
            &[
                "N",
                "oracle_max_intermediate",
                "N^2/n^2",
                "nprr_intermediate",
                "binary_ms",
                "nprr_ms",
            ],
            "oracle_max_intermediate ≥ N²/n² (quadratic); nprr_intermediate = O(n²·N) (linear)",
        );
        for n in ns {
            let rels = gen::simple_lw(n_attr, n);
            let ((_, bstats), t_bin) = time_secs(|| best_actual_left_deep(&rels));
            let (out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
            let d = (n - 1) / (n_attr as u64 - 1);
            t.row(vec![
                n.to_string(),
                bstats.max_intermediate.to_string(),
                ((d + 1) * (d + 1)).to_string(),
                out.stats.intermediate_tuples.to_string(),
                ms(t_bin),
                ms(t_nprr),
            ]);
            assert!(bstats.max_intermediate as u64 >= (d + 1) * (d + 1));
        }
        tables.push(t);
    }
    tables
}

/// E8 — Lemma 6.3: the gap survives embedding the LW core into a larger
/// query with a pendant attribute.
#[must_use]
pub fn e8_embedded_gap(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    for k in [3usize, 4] {
        let ns = sweep(quick, &[64, 128, 256, 512], &[32, 64]);
        let mut t = Table::new(
            "e8",
            &format!("Lemma 6.3 embedded gap, |U|={k}"),
            &[
                "N",
                "oracle_max_intermediate",
                "nprr_intermediate",
                "binary_ms",
                "nprr_ms",
            ],
            "oracle binary stays quadratic in N; NPRR near-linear",
        );
        for n in ns {
            let rels = gen::embedded_gap(k, n);
            let ((_, bstats), t_bin) = time_secs(|| best_actual_left_deep(&rels));
            let (out, t_nprr) = time_secs(|| join_with(&rels, Algorithm::Nprr, None).unwrap());
            t.row(vec![
                n.to_string(),
                bstats.max_intermediate.to_string(),
                out.stats.intermediate_tuples.to_string(),
                ms(t_bin),
                ms(t_nprr),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// E9 — Lemma 7.1: cycle queries in `O(m·√∏N)` via the graph-join path.
#[must_use]
pub fn e9_cycles(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "e9",
        "Lemma 7.1: cycle queries (even via alternation, odd via bundled LW3)",
        &[
            "m",
            "N",
            "sqrt_prod",
            "output",
            "cycle_ms",
            "naive_ms",
            "matches",
        ],
        "cycle_ms tracks √(∏N) (= N^{m/2} worst case), beating naive's intermediates",
    );
    // Cycle joins legitimately cost Θ(√∏N) = Θ(N^{m/2}); pick N per m so
    // the budget stays around a few million tuples.
    let ms_list: &[usize] = if quick { &[4, 5] } else { &[4, 5, 6, 7] };
    for &m in ms_list {
        let n: usize = if quick {
            40
        } else {
            match m {
                4 => 2000,
                5 => 500,
                6 => 180,
                _ => 90,
            }
        };
        let dom = (n as f64).sqrt().ceil() as u64 * 2;
        let rels = gen::cycle_instance(m as u64, m, n, dom);
        let sizes: Vec<usize> = rels.iter().map(Relation::len).collect();
        let sqrt_prod: f64 = (sizes.iter().map(|&s| (s as f64).ln()).sum::<f64>() / 2.0).exp();
        let (out, t_cyc) = time_secs(|| join_with(&rels, Algorithm::GraphJoin, None).unwrap());
        let (nv, t_naive) = time_secs(|| naive::join(&rels));
        t.row(vec![
            m.to_string(),
            n.to_string(),
            format!("{sqrt_prod:.0}"),
            out.relation.len().to_string(),
            ms(t_cyc),
            ms(t_naive),
            (out.relation.len() == nv.len()).to_string(),
        ]);
    }
    vec![t]
}

/// E10 — Theorem 7.3 + Lemma 7.2: random arity-≤2 queries, their
/// half-integral cover structure, and timing.
#[must_use]
pub fn e10_graph_queries(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "e10",
        "Theorem 7.3: arity-≤2 queries via stars + odd cycles",
        &[
            "seed", "edges", "stars", "cycles", "zeros", "output", "graph_ms", "naive_ms",
        ],
        "every optimal BFS cover decomposes (Lemma 7.2); outputs match the oracle",
    );
    let rows_per_rel = if quick { 60 } else { 500 };
    for seed in 0..6u64 {
        // a triangle + a path + a pendant star, randomly populated
        let shapes: &[&[u32]] = &[&[0, 1], &[1, 2], &[0, 2], &[2, 3], &[3, 4], &[0, 5]];
        let rels: Vec<Relation> = shapes
            .iter()
            .enumerate()
            .map(|(i, attrs)| gen::random_relation(seed * 100 + i as u64, attrs, rows_per_rel, 10))
            .collect();
        let q = JoinQuery::new(&rels).unwrap();
        let cover = q.optimal_cover().unwrap();
        let decomp =
            wcoj_hypergraph::half_integral::decompose(q.hypergraph(), &cover.exact).unwrap();
        let (out, t_g) = time_secs(|| graph_join::join_graph(&q).unwrap());
        let (nv, t_naive) = time_secs(|| naive::join(&rels));
        assert_eq!(out.relation.len(), nv.len());
        t.row(vec![
            seed.to_string(),
            shapes.len().to_string(),
            decomp.stars.len().to_string(),
            decomp.cycles.len().to_string(),
            decomp.zero_edges.len().to_string(),
            out.relation.len().to_string(),
            ms(t_g),
            ms(t_naive),
        ]);
    }
    vec![t]
}

/// E11 — §7.2: relaxed joins; the tightness instance achieves `N + Nⁿ`.
#[must_use]
pub fn e11_relaxed(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "e11",
        "§7.2 relaxed joins: Algorithm 6 vs brute force; tight instance hits N + N^n",
        &["instance", "r", "classes", "output", "expected", "alg6_ms"],
        "output = expected on every row; classes ≪ number of subsets",
    );
    // tightness family
    for n in [2u32, 3] {
        let cap = if quick { 3u64 } else { 8 };
        let rels = gen::relaxed_tight(n, cap);
        let (out, secs) = time_secs(|| relaxed::relaxed_join(&rels, n as usize).unwrap());
        let expected = cap + cap.pow(n);
        t.row(vec![
            format!("tight(n={n},N={cap})"),
            n.to_string(),
            out.classes.to_string(),
            out.relation.len().to_string(),
            expected.to_string(),
            ms(secs),
        ]);
        assert_eq!(out.relation.len() as u64, expected);
    }
    // random triangle with r = 1: cross-check against brute force
    let rows = if quick { 12 } else { 30 };
    for seed in 0..3u64 {
        let rels = vec![
            gen::random_relation(seed, &[0, 1], rows, 6),
            gen::random_relation(seed + 50, &[1, 2], rows, 6),
            gen::random_relation(seed + 99, &[0, 2], rows, 6),
        ];
        let (out, secs) = time_secs(|| relaxed::relaxed_join(&rels, 1).unwrap());
        let brute = relaxed::relaxed_join_bruteforce(&rels, 1).unwrap();
        t.row(vec![
            format!("random(seed={seed})"),
            "1".into(),
            out.classes.to_string(),
            out.relation.len().to_string(),
            brute.len().to_string(),
            ms(secs),
        ]);
        assert_eq!(out.relation.len(), brute.len());
    }
    vec![t]
}

/// E12 — §7.3 FDs: the AGM bound and runtime collapse once FDs are used.
#[must_use]
pub fn e12_fd(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "e12",
        "§7.3 functional dependencies: FD-aware bound N² vs FD-blind worst order",
        &[
            "k",
            "N",
            "blind_log2_bound",
            "fd_log2_bound",
            "fd_ms",
            "blind_worstorder_ms",
        ],
        "fd bound ≈ 2·log N regardless of k; blind bound grows with k",
    );
    let n = if quick { 32usize } else { 256 };
    for k in [2u32, 3, 4] {
        let (rels, fd_triples) = gen::fd_family(3, k, n);
        let fds: Vec<fd::Fd> = fd_triples
            .iter()
            .map(|&(e, f, to)| fd::Fd {
                edge: e,
                from: Attr(f),
                to: Attr(to),
            })
            .collect();
        let q = JoinQuery::new(&rels).unwrap();
        let blind = q.optimal_cover().unwrap().log2_bound;
        let fd_bound = fd::expanded_log2_bound(&rels, &fds).unwrap();
        let (fd_out, t_fd) = time_secs(|| fd::join_with_fds(&rels, &fds).unwrap());
        // the "wrong join ordering" the paper warns about: join all Sᵢ
        // first (their join can blow up to N^k), then the Rᵢ.
        let wrong_order: Vec<usize> = (k as usize..2 * k as usize).chain(0..k as usize).collect();
        let ((bout, _), t_blind) = time_secs(|| execute_left_deep(&rels, &wrong_order).unwrap());
        assert_eq!(fd_out.relation.len(), bout.len());
        t.row(vec![
            k.to_string(),
            n.to_string(),
            format!("{blind:.1}"),
            format!("{fd_bound:.1}"),
            ms(t_fd),
            ms(t_blind),
        ]);
    }
    vec![t]
}

/// E13 — Corollary 5.3: algorithmic BT/LW inequality on random point sets.
#[must_use]
pub fn e13_bt(quick: bool) -> Vec<Table> {
    use wcoj_storage::ops::project;
    let mut t = Table::new(
        "e13",
        "Corollary 5.3: reconstructing S from d-regular projections",
        &["dims", "d", "|S|", "join_size", "bt_bound", "holds", "ms"],
        "join_size ≤ bt_bound and S ⊆ join, for every family",
    );
    let count = if quick { 30 } else { 200 };
    let dim_list: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5] };
    for &dims in dim_list {
        let s = gen::random_relation_exact(
            dims as u64,
            &(0..dims as u32).collect::<Vec<_>>(),
            count,
            8,
        );
        let projs: Vec<Relation> = (0..dims)
            .map(|omit| {
                let keep: Vec<Attr> = (0..dims as u32)
                    .filter(|&v| v != omit as u32)
                    .map(Attr)
                    .collect();
                project(&s, &keep).unwrap()
            })
            .collect();
        let (out, secs) = time_secs(|| bt::reconstruct(&projs).unwrap());
        let sizes: Vec<usize> = projs.iter().map(Relation::len).collect();
        let holds = bt::inequality_holds(out.relation.len(), out.d, &sizes)
            && s.iter_rows().all(|r| out.relation.contains_row(r));
        t.row(vec![
            dims.to_string(),
            out.d.to_string(),
            s.len().to_string(),
            out.relation.len().to_string(),
            format!("{:.0}", out.log2_bound.exp2()),
            holds.to_string(),
            ms(secs),
        ]);
        assert!(holds);
    }
    vec![t]
}

/// E14 — §7.3 full conjunctive queries, end to end through the text
/// front-end.
#[must_use]
pub fn e14_full_cq() -> Vec<Table> {
    use wcoj_query::{execute, parse_query, Catalog};
    let mut t = Table::new(
        "e14",
        "§7.3 full conjunctive queries via the Datalog front-end",
        &["query", "output", "oracle", "matches"],
        "front-end output matches a hand-built oracle on every query",
    );
    let edges = gen::random_graph_edges(5, 50, 250);
    let mut catalog = Catalog::new();
    catalog.insert("E", edges.clone());

    // triangles with repeated relation use
    let q = parse_query("Tri(x, y, z) :- E(x, y), E(y, z), E(x, z)").unwrap();
    let out = execute(&q, &catalog).unwrap();
    // oracle: fullcq by hand
    let sub = |a: u32, b: u32| {
        fullcq::Subgoal::new(
            edges.clone(),
            vec![fullcq::Term::Var(a), fullcq::Term::Var(b)],
        )
        .unwrap()
    };
    let oracle = fullcq::evaluate(&[sub(0, 1), sub(1, 2), sub(0, 2)]).unwrap();
    t.row(vec![
        "Tri(x,y,z)".into(),
        out.relation.len().to_string(),
        oracle.len().to_string(),
        (out.relation.len() == oracle.len()).to_string(),
    ]);

    // 2-paths with a constant endpoint
    let q2 = parse_query("P(y, z) :- E(0, y), E(y, z)").unwrap();
    let out2 = execute(&q2, &catalog).unwrap();
    let mut count = 0usize;
    for r1 in edges.iter_rows() {
        if r1[0].0 == 0 {
            for r2 in edges.iter_rows() {
                if r2[0] == r1[1] {
                    count += 1;
                }
            }
        }
    }
    t.row(vec![
        "P(y,z) from 0".into(),
        out2.relation.len().to_string(),
        count.to_string(),
        (out2.relation.len() == count).to_string(),
    ]);
    vec![t]
}

/// E15 — Lemma 3.2: tightening is total, tight, and never worsens the
/// bound.
#[must_use]
pub fn e15_tighten() -> Vec<Table> {
    let mut t = Table::new(
        "e15",
        "Lemma 3.2: tight-cover transformation",
        &["shape", "edges_before", "edges_after", "tight", "bound_ok"],
        "tight = true and bound_ok = true on every shape",
    );
    let shapes: Vec<(&str, wcoj_hypergraph::Hypergraph, Vec<Rational>)> = vec![
        (
            "triangle/all-ones",
            wcoj_hypergraph::Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap(),
            vec![Rational::ONE; 3],
        ),
        (
            "path/overweight",
            wcoj_hypergraph::Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap(),
            vec![Rational::ONE, Rational::ONE],
        ),
        (
            "lw4/uniform+slack",
            wcoj_hypergraph::Hypergraph::new(
                4,
                vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            )
            .unwrap(),
            vec![Rational::new(1, 2); 4],
        ),
    ];
    for (name, h, x) in shapes {
        let res = tighten(&h, &x).unwrap();
        let tight = wcoj_hypergraph::cover::is_tight_cover(&res.hypergraph, &res.cover);
        // projections can only shrink: model |π(R)| = |R| (worst case)
        let sizes = vec![100usize; h.num_edges()];
        let ok = wcoj_hypergraph::tighten::bound_not_worse(&res, &sizes, &x, |s, _| sizes[s]);
        t.row(vec![
            name.to_owned(),
            h.num_edges().to_string(),
            res.hypergraph.num_edges().to_string(),
            tight.to_string(),
            ok.to_string(),
        ]);
        assert!(tight && ok);
    }
    vec![t]
}

/// E16 — partition-parallel scaling (`wcoj-exec`): triangle-hard and
/// 4-cycle instances at 1/2/4/8 worker threads, reporting wall-clock
/// speedup over the single-thread run. Mirrors the
/// `e13_par_scaling` criterion bench inside the harness so speedups are
/// recorded alongside the paper experiments. (On a single-core host the
/// speedup column is expectedly ≈1.)
#[must_use]
pub fn e16_par_scaling(quick: bool) -> Vec<Table> {
    use wcoj_core::nprr::PreparedQuery;
    use wcoj_exec::{par_join_prepared, ExecConfig};
    let mut t = Table::new(
        "e16",
        "wcoj-exec partition-parallel scaling: par_join vs 1-thread run",
        &["instance", "threads", "shards", "output", "ms", "speedup"],
        "output identical across thread counts; speedup grows toward the core count",
    );
    let (tri_n, cyc_n, cyc_dom) = if quick {
        (256, 400, 60)
    } else {
        (2048, 3000, 250)
    };
    let instances = [
        ("triangle_hard", gen::example_2_2(tri_n)),
        ("cycle4", gen::cycle_instance(13, 4, cyc_n, cyc_dom)),
    ];
    for (name, rels) in &instances {
        let prepared = PreparedQuery::new(rels).expect("well-formed instance");
        let mut base_secs = None;
        let mut base_len = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            let (out, secs) = time_secs(|| par_join_prepared(&prepared, None, &cfg).expect("join"));
            let base = *base_secs.get_or_insert(secs);
            match base_len {
                None => base_len = Some(out.relation.len()),
                Some(expect) => assert_eq!(out.relation.len(), expect, "{name}"),
            }
            t.row(vec![
                (*name).to_owned(),
                threads.to_string(),
                out.stats.shards.to_string(),
                out.relation.len().to_string(),
                ms(secs),
                format!("{:.2}", base / secs.max(1e-12)),
            ]);
        }
    }
    vec![t]
}

/// E17 — shared-pool query service (`wcoj-service`): queries/sec at
/// 1–64 concurrent submissions of mixed seed-family queries onto one
/// worker pool, every output verified bit-identical to the sequential
/// engine. (On a single-core host the qps column is expectedly flat;
/// the verification still exercises the full scheduler.)
#[must_use]
pub fn e17_service_throughput(quick: bool) -> Vec<Table> {
    use std::sync::Arc;
    use wcoj_core::nprr::PreparedQuery;
    use wcoj_exec::ExecConfig;
    use wcoj_service::{Service, ServiceConfig};

    let mut t = Table::new(
        "e17",
        "wcoj-service shared-pool scheduler: mixed-query throughput vs concurrency",
        &[
            "concurrency",
            "queries",
            "workers",
            "total_ms",
            "qps",
            "identical",
        ],
        "qps roughly flat in concurrency (one shared pool, no oversubscription); identical = true",
    );
    let size = if quick { 1 } else { 4 };
    let instances: Vec<(&str, Vec<Relation>)> = vec![
        ("triangle_hard", gen::example_2_2(64 * size as u64)),
        ("agm_tight", gen::agm_tight_triangle(4 * size as u64)),
        ("cycle4", gen::cycle_instance(13, 4, 120 * size, 40)),
        ("lw4", gen::random_lw(5, 4, 60 * size, 8)),
        ("figure2", gen::worked_example(7, 40 * size, 6)),
        (
            "zipf_triangle",
            vec![
                gen::zipf_relation(21, &[0, 1], 150 * size, 30, 1.2),
                gen::zipf_relation(22, &[1, 2], 150 * size, 30, 1.2),
                gen::zipf_relation(23, &[0, 2], 150 * size, 30, 1.2),
            ],
        ),
    ];
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();
    let expected: Vec<Relation> = instances
        .iter()
        .map(|(_, rels)| {
            join_with(rels, Algorithm::Nprr, None)
                .expect("sequential oracle")
                .relation
        })
        .collect();

    let workers = std::thread::available_parallelism().map_or(2, std::num::NonZero::get);
    let service = Arc::new(Service::new(ServiceConfig::with_workers(workers)));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    let levels: &[usize] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 64] };
    for &concurrency in levels {
        let queries_per_thread = if quick { 2 } else { 4 };
        let total = concurrency * queries_per_thread;
        let all_ok = std::sync::atomic::AtomicBool::new(true);
        let (_, secs) = time_secs(|| {
            std::thread::scope(|scope| {
                for submitter in 0..concurrency {
                    let service = Arc::clone(&service);
                    let cfg = cfg.clone();
                    let prepared = &prepared;
                    let expected = &expected;
                    let all_ok = &all_ok;
                    scope.spawn(move || {
                        for j in 0..queries_per_thread {
                            let q = (submitter + j) % prepared.len();
                            let out = service
                                .submit(&prepared[q], &cfg)
                                .expect("submit")
                                .wait()
                                .expect("join");
                            if out.relation != expected[q] {
                                all_ok.store(false, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
        });
        let ok = all_ok.load(std::sync::atomic::Ordering::Relaxed);
        t.row(vec![
            concurrency.to_string(),
            total.to_string(),
            workers.to_string(),
            ms(secs),
            format!("{:.0}", total as f64 / secs.max(1e-12)),
            ok.to_string(),
        ]);
        assert!(ok, "service output diverged from sequential");
    }
    vec![t]
}

/// E18 — intra-value parallelism (`wcoj-exec` anchor sub-shards): a
/// single-hot-key workload — one root value carrying ≥ 90% of the
/// estimated work — at 1/2/4/8 worker threads, with the heavy-value
/// splitter on (default) and off (`heavy_split_factor = 0`, singleton
/// isolation only). Reports the task count, how many tasks are anchor
/// sub-shards, and wall-clock speedup over the 1-thread run; outputs are
/// verified identical across all configurations. (On a single-core host
/// the speedup column is expectedly ≈ 1.)
#[must_use]
pub fn e18_heavy_key_scaling(quick: bool) -> Vec<Table> {
    use wcoj_core::nprr::PreparedQuery;
    use wcoj_exec::{par_join_prepared, ExecConfig, ShardPlan, OVERSPLIT};
    let mut t = Table::new(
        "e18",
        "wcoj-exec intra-value parallelism: single-hot-key workload, split on/off",
        &[
            "instance",
            "mode",
            "threads",
            "tasks",
            "sub_shards",
            "output",
            "ms",
            "speedup",
        ],
        "split-on plans carry ≥ 2 sub-shard tasks; output identical everywhere; \
         split-on speedup grows toward the core count while split-off stalls at ≈ 1",
    );
    let hot = if quick { 96 } else { 512 };
    let instances = [
        ("hot_key", wcoj_datagen::hot_key_triangle(41, hot, 4)),
        ("hot_key_2", wcoj_datagen::hot_key_triangle(43, hot / 2, 2)),
    ];
    for (name, rels) in &instances {
        let prepared = PreparedQuery::new(rels).expect("well-formed instance");
        let weights = prepared.root_candidate_weights();
        let total: u64 = weights.iter().map(|&(_, w)| w).sum();
        let hottest = weights.iter().map(|&(_, w)| w).max().expect("non-empty");
        assert!(
            hottest as f64 / total as f64 >= 0.9,
            "{name}: one root value carries ≥ 90% of the work"
        );
        // One sequential oracle per instance: every mode × thread-count
        // configuration must reproduce it bit for bit.
        let oracle = join_with(rels, Algorithm::Nprr, None)
            .expect("sequential oracle")
            .relation;
        for (mode, factor) in [
            ("split", ExecConfig::default().heavy_split_factor),
            ("nosplit", 0),
        ] {
            let mut base_secs = None;
            for threads in [1usize, 2, 4, 8] {
                let cfg = ExecConfig {
                    threads,
                    shard_min_size: 1,
                    heavy_split_factor: factor,
                    ..ExecConfig::default()
                };
                // the plan the run actually executes (1 thread = in-place
                // sequential run, no shards)
                let (tasks, sub_shards) = if threads > 1 {
                    let plan = ShardPlan::plan(&prepared, threads * OVERSPLIT, &cfg);
                    let subs = plan.shards().iter().filter(|s| s.anchor.is_some()).count();
                    (plan.tasks().len(), subs)
                } else {
                    (1, 0)
                };
                if threads > 1 {
                    if mode == "split" {
                        assert!(sub_shards >= 2, "{name}: hot key split into sub-shards");
                    } else {
                        assert_eq!(sub_shards, 0, "{name}: splitter disabled");
                    }
                }
                let (out, secs) =
                    time_secs(|| par_join_prepared(&prepared, None, &cfg).expect("join"));
                let base = *base_secs.get_or_insert(secs);
                assert_eq!(
                    out.relation, oracle,
                    "{name}: {mode} t={threads} bit-identical to sequential"
                );
                t.row(vec![
                    (*name).to_owned(),
                    mode.to_owned(),
                    threads.to_string(),
                    tasks.to_string(),
                    sub_shards.to_string(),
                    out.relation.len().to_string(),
                    ms(secs),
                    format!("{:.2}", base / secs.max(1e-12)),
                ]);
            }
        }
    }
    vec![t]
}

/// E19 — service admission control (`wcoj-service` bounded injector): a
/// 2-worker service with a small queue bound flooded from 2–8 submitter
/// threads (shed-and-retry, so overload delays but never loses queries).
/// Records accepted/shed counts and the p50/p99 submit-to-result wait
/// latency of accepted queries; every output is verified bit-identical
/// to the sequential engine. Shed counts grow with the offered load
/// while the bounded queue keeps worker-side latency flat — the
/// backpressure story in one table.
#[must_use]
pub fn e19_overload_shedding(quick: bool) -> Vec<Table> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use wcoj_core::nprr::PreparedQuery;
    use wcoj_exec::ExecConfig;
    use wcoj_service::{Service, ServiceConfig, SubmitError};

    const QUEUE_DEPTH: usize = 4;
    let mut t = Table::new(
        "e19",
        "wcoj-service admission control: flood past the queue bound, shed-and-retry",
        &[
            "submitters",
            "offered",
            "accepted",
            "shed",
            "p50_wait_ms",
            "p99_wait_ms",
            "identical",
        ],
        "shed grows with offered load (0 possible at low concurrency); accepted = offered \
         (retries); identical = true",
    );
    let size = if quick { 1 } else { 3 };
    let instances: Vec<(&str, Vec<Relation>)> = vec![
        ("triangle_hard", gen::example_2_2(64 * size as u64)),
        ("cycle4", gen::cycle_instance(13, 4, 120 * size, 40)),
        (
            "zipf_triangle",
            vec![
                gen::zipf_relation(21, &[0, 1], 150 * size, 30, 1.2),
                gen::zipf_relation(22, &[1, 2], 150 * size, 30, 1.2),
                gen::zipf_relation(23, &[0, 2], 150 * size, 30, 1.2),
            ],
        ),
        ("figure2", gen::worked_example(7, 40 * size, 6)),
    ];
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();
    let expected: Vec<Relation> = instances
        .iter()
        .map(|(_, rels)| {
            join_with(rels, Algorithm::Nprr, None)
                .expect("sequential oracle")
                .relation
        })
        .collect();

    let levels: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    for &submitters in levels {
        // Fresh service per level so shed/latency columns are per-row.
        let service = Arc::new(Service::new(
            ServiceConfig::with_workers(2).with_queue_depth(QUEUE_DEPTH),
        ));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let per_submitter = if quick { 3 } else { 6 };
        let offered = submitters * per_submitter;
        let all_ok = AtomicBool::new(true);
        let local_shed = AtomicU64::new(0);
        let waits_ms: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(offered));
        std::thread::scope(|scope| {
            for submitter in 0..submitters {
                let service = Arc::clone(&service);
                let cfg = cfg.clone();
                let prepared = &prepared;
                let expected = &expected;
                let all_ok = &all_ok;
                let local_shed = &local_shed;
                let waits_ms = &waits_ms;
                scope.spawn(move || {
                    for j in 0..per_submitter {
                        let q = (submitter + j) % prepared.len();
                        let start = std::time::Instant::now();
                        let handle = loop {
                            match service.submit(&prepared[q], &cfg) {
                                Ok(handle) => break handle,
                                Err(SubmitError::Overloaded { .. }) => {
                                    local_shed.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        };
                        let out = handle.wait().expect("accepted query evaluates");
                        waits_ms
                            .lock()
                            .expect("collector")
                            .push(start.elapsed().as_secs_f64() * 1e3);
                        if out.relation != expected[q] {
                            all_ok.store(false, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let counters = service.counters();
        assert_eq!(
            counters.shed,
            local_shed.load(Ordering::Relaxed),
            "sheds reported, not dropped"
        );
        assert_eq!(counters.submitted, offered as u64, "retries land all");
        assert_eq!(counters.completed, offered as u64);
        let mut waits = waits_ms.into_inner().expect("collector");
        waits.sort_by(f64::total_cmp);
        // Nearest-rank via the workspace's single percentile definition
        // (the old `(len-1) * p` truncation biased high quantiles low —
        // the p99 of 10 samples came out as the second-largest, not the
        // max).
        let pct = |p: f64| wcoj_obs::percentile_f64(&waits, p);
        let ok = all_ok.load(Ordering::Relaxed);
        assert!(ok, "service output diverged from sequential under overload");
        t.row(vec![
            submitters.to_string(),
            offered.to_string(),
            counters.submitted.to_string(),
            counters.shed.to_string(),
            format!("{:.2}", pct(0.50)),
            format!("{:.2}", pct(0.99)),
            ok.to_string(),
        ]);
    }
    vec![t]
}

/// E20 — execution profiles and the trace ring (`wcoj-obs`): every seed
/// query family through a profiled service. Per instance: the profile
/// covers every scheduled shard, lifecycle phases are monotone, per-shard
/// rows sum to the output size, and per-shard `JoinStats` reassemble into
/// the output's stats — while the output stays bit-identical to the
/// sequential engine. The summary-level trace ring records the query's
/// admit/finish decisions, and the registry's Prometheus rendering passes
/// the format check. p50/p99 of per-shard run time use the workspace's
/// single nearest-rank definition (`wcoj_obs::percentile_u64`) — the same
/// one e19's wait columns use.
#[must_use]
pub fn e20_obs_profiles(quick: bool) -> Vec<Table> {
    use std::sync::Arc;
    use wcoj_core::nprr::PreparedQuery;
    use wcoj_exec::ExecConfig;
    use wcoj_obs::{trace, TraceEvent, TraceLevel};
    use wcoj_service::{Service, ServiceConfig};

    let mut t = Table::new(
        "e20",
        "wcoj-obs per-query profiles: per-shard coverage, monotone phases, trace audit",
        &[
            "instance",
            "shards",
            "rows",
            "p50_run_us",
            "p99_run_us",
            "trace_events",
            "identical",
        ],
        "profile covers every shard; Σ shard rows = output rows; identical = true",
    );
    let size = if quick { 1 } else { 3 };
    let instances: Vec<(&str, Vec<Relation>)> = vec![
        ("triangle_hard", gen::example_2_2(64 * size as u64)),
        ("agm_tight", gen::agm_tight_triangle(4 + size as u64)),
        ("lw4", gen::random_lw(31, 4, 80 * size, 8)),
        ("figure2", gen::worked_example(7, 40 * size, 6)),
        (
            "zipf_triangle",
            vec![
                gen::zipf_relation(21, &[0, 1], 150 * size, 30, 1.2),
                gen::zipf_relation(22, &[1, 2], 150 * size, 30, 1.2),
                gen::zipf_relation(23, &[0, 2], 150 * size, 30, 1.2),
            ],
        ),
        ("hot_key", gen::hot_key_triangle(17, 96 * size, 3)),
    ];

    let ring = trace();
    let saved_level = ring.level();
    ring.set_level(TraceLevel::Summary);
    let service = Service::new(ServiceConfig::with_workers(2));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    for (name, rels) in &instances {
        let oracle = join_with(rels, Algorithm::Nprr, None)
            .expect("sequential oracle")
            .relation;
        let prepared = Arc::new(PreparedQuery::new(rels).expect("well-formed instance"));
        let handle = service
            .submit(&prepared, &cfg)
            .expect("unbounded admission");
        let query_id = handle.profile().query_id;
        let (out, profile) = handle.wait_profiled().expect("query evaluates");
        let identical = out.relation == oracle;
        assert!(identical, "{name}: profiling changes no output");

        // The tentpole acceptance shape, asserted per family.
        assert!(profile.is_complete(), "{name}: every shard reported");
        assert!(
            profile.shards.iter().all(|s| !s.skipped),
            "{name}: nothing was cancelled"
        );
        assert_eq!(
            profile.total_rows(),
            out.relation.len() as u64,
            "{name}: per-shard rows sum to the output"
        );
        let mut stats = wcoj_core::JoinStats::default();
        for shard in &profile.shards {
            stats.absorb(&shard.stats);
        }
        assert_eq!(
            stats.case_a + stats.case_b,
            out.stats.case_a + out.stats.case_b,
            "{name}: per-shard stats reassemble"
        );
        let planned = profile.planned.expect("planning ran");
        let first = profile.first_dispatch.expect("dispatched");
        let last = profile.last_finish.expect("finished");
        let reassembled = profile.reassembled.expect("waited");
        assert!(
            profile.admitted <= planned && planned <= first && first <= last && last <= reassembled,
            "{name}: monotone phases: {profile:?}"
        );

        let events = ring.drain();
        let ours = events
            .iter()
            .filter(|e| match e {
                TraceEvent::Admit { query, .. }
                | TraceEvent::Cancel { query }
                | TraceEvent::SkipTask { query, .. }
                | TraceEvent::RingRotate { query, .. }
                | TraceEvent::TaskRun { query, .. }
                | TraceEvent::Finish { query } => *query == query_id,
                TraceEvent::Shed { .. } | TraceEvent::HeavySplit { .. } => false,
            })
            .count();
        assert!(ours >= 2, "{name}: at least Admit + Finish traced");

        let mut runs_us: Vec<u64> = profile
            .shards
            .iter()
            .map(|s| u64::try_from(s.run.as_micros()).unwrap_or(u64::MAX))
            .collect();
        runs_us.sort_unstable();
        t.row(vec![
            (*name).to_owned(),
            profile.total_shards.to_string(),
            out.relation.len().to_string(),
            wcoj_obs::percentile_u64(&runs_us, 0.50).to_string(),
            wcoj_obs::percentile_u64(&runs_us, 0.99).to_string(),
            ours.to_string(),
            identical.to_string(),
        ]);
    }
    ring.set_level(saved_level);

    // The scrape surface the service fed while the families ran.
    let text = wcoj_obs::global().render_prometheus();
    assert!(text.contains("wcoj_query_latency_us_count"));
    wcoj_obs::check_exposition(&text).expect("valid Prometheus exposition");
    vec![t]
}

/// E21 — prepared-plan cache (`wcoj-query`): repeated submission of the
/// same text query through a `Catalog`. The first (cold) submission pays
/// parsing, §7.3 reduction, the cover LP, and flat-index construction;
/// every later (warm) submission reuses the cached `PreparedQuery` and
/// pays only parsing + the engine run. Reports cold vs warm submission
/// cost per family plus the cache's hit/miss account — the repeat-query
/// cost drop is planning work, not parallelism, so it shows even on a
/// single-core host. Every round's output is verified bit-identical to
/// the first.
#[must_use]
pub fn e21_plan_cache(quick: bool) -> Vec<Table> {
    use wcoj_query::{execute, parse_query, Catalog};

    let mut t = Table::new(
        "e21",
        "wcoj-query prepared-plan cache: cold build vs warm cache-hit submissions",
        &[
            "instance",
            "rounds",
            "rows",
            "cold_ms",
            "warm_p50_ms",
            "cold/warm",
            "hits",
            "misses",
            "identical",
        ],
        "warm rounds skip reduction + cover LP + indexing; hits = rounds-1, misses = 1",
    );
    let size = if quick { 1 } else { 3 };
    let rounds = if quick { 4usize } else { 16 };
    let instances: Vec<(&str, Vec<Relation>)> = vec![
        (
            "random_triangle",
            vec![
                gen::random_relation(41, &[0, 1], 400 * size, 24),
                gen::random_relation(51, &[1, 2], 400 * size, 24),
                gen::random_relation(61, &[0, 2], 400 * size, 24),
            ],
        ),
        (
            "zipf_triangle",
            vec![
                gen::zipf_relation(71, &[0, 1], 400 * size, 40, 1.3),
                gen::zipf_relation(81, &[1, 2], 400 * size, 40, 1.3),
                gen::zipf_relation(91, &[0, 2], 400 * size, 40, 1.3),
            ],
        ),
        ("hot_key", gen::hot_key_triangle(17, 96 * size, 4)),
    ];
    let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").expect("well-formed query");
    for (name, rels) in instances {
        let mut catalog = Catalog::new();
        for (rel_name, rel) in ["R", "S", "T"].iter().zip(rels) {
            catalog.insert(*rel_name, rel);
        }
        let (first, cold_secs) = time_secs(|| execute(&q, &catalog).expect("cold round"));
        assert_eq!(catalog.plan_cache_stats(), (0, 1), "{name}: cold build");
        let mut warm_secs = Vec::with_capacity(rounds - 1);
        for round in 1..rounds {
            let (out, secs) = time_secs(|| execute(&q, &catalog).expect("warm round"));
            assert_eq!(
                out.relation, first.relation,
                "{name}: round {round} bit-identical to the cold round"
            );
            warm_secs.push(secs);
        }
        let (hits, misses) = catalog.plan_cache_stats();
        assert_eq!(
            (hits, misses),
            ((rounds - 1) as u64, 1),
            "{name}: every warm round was a cache hit"
        );
        warm_secs.sort_by(f64::total_cmp);
        let warm_p50 = warm_secs[warm_secs.len() / 2];
        t.row(vec![
            name.to_owned(),
            rounds.to_string(),
            first.relation.len().to_string(),
            ms(cold_secs),
            ms(warm_p50),
            format!("{:.2}", cold_secs / warm_p50.max(1e-12)),
            hits.to_string(),
            misses.to_string(),
            "true".to_owned(),
        ]);
    }
    vec![t]
}

/// E22 — query latency under sustained ingest (`wcoj-query` mutable
/// catalog): a triangle query re-executed while rows stream into its
/// relations. Three regimes per instance: `base` (frozen relations, the
/// pre-ingest reference), `fresh` (growing insert/delete buffers merged
/// into every scan via `DeltaIndex` views — plans *refresh* their
/// weights instead of rebuilding), and `compacted` (buffers folded into
/// fresh base indexes, one full rebuild then pure cache hits). Reports
/// p50/p99 latency and the plan cache's hit/refresh/miss account per
/// regime; each regime's output is verified against a materialized
/// re-run of the same catalog state.
#[must_use]
pub fn e22_ingest_latency(quick: bool) -> Vec<Table> {
    use wcoj_query::{execute, parse_query, Catalog};
    use wcoj_storage::Value;

    let mut t = Table::new(
        "e22",
        "wcoj-query ingest: query latency with fresh delta buffers vs after compaction",
        &[
            "instance",
            "mode",
            "delta_rows",
            "rounds",
            "rows",
            "p50_ms",
            "p99_ms",
            "hits",
            "refreshes",
            "misses",
            "identical",
        ],
        "fresh rounds pay the base+delta merge and a weights refresh; compaction restores base-only scans",
    );
    let size = if quick { 1 } else { 3 };
    let rounds = if quick { 4usize } else { 12 };
    let batches = if quick { 3usize } else { 10 };
    let batch_rows = 32 * size;
    let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").expect("well-formed query");

    let instances: Vec<(&str, Vec<Relation>, u64)> = vec![
        (
            "random_triangle",
            vec![
                gen::random_relation(43, &[0, 1], 400 * size, 24),
                gen::random_relation(53, &[1, 2], 400 * size, 24),
                gen::random_relation(63, &[0, 2], 400 * size, 24),
            ],
            24,
        ),
        (
            "zipf_triangle",
            vec![
                gen::zipf_relation(73, &[0, 1], 400 * size, 40, 1.3),
                gen::zipf_relation(83, &[1, 2], 400 * size, 40, 1.3),
                gen::zipf_relation(93, &[0, 2], 400 * size, 40, 1.3),
            ],
            40,
        ),
    ];

    // Checks one regime: `rounds` timed executions, output verified
    // against a fresh catalog holding the materialized relations.
    let regime = |t: &mut Table,
                  name: &str,
                  mode: &str,
                  catalog: &Catalog,
                  q: &wcoj_query::ParsedQuery,
                  stats_before: (u64, u64, u64)| {
        let mut secs = Vec::with_capacity(rounds);
        let mut first: Option<Relation> = None;
        for _ in 0..rounds {
            let (out, s) = time_secs(|| execute(q, catalog).expect("execute"));
            if let Some(ref f) = first {
                assert_eq!(&out.relation, f, "{name}/{mode}: rounds bit-identical");
            } else {
                first = Some(out.relation);
            }
            secs.push(s);
        }
        let first = first.expect("≥ 1 round");
        let mut plain = Catalog::new();
        for rel_name in ["R", "S", "T"] {
            plain.insert(rel_name, catalog.get(rel_name).expect("relation"));
        }
        let reference = execute(q, &plain).expect("materialized run");
        assert_eq!(
            first, reference.relation,
            "{name}/{mode}: delta views match materialized relations"
        );
        secs.sort_by(f64::total_cmp);
        let (hits, misses) = catalog.plan_cache_stats();
        let refreshes = catalog.plan_cache().refreshes();
        let delta_rows: usize = ["R", "S", "T"]
            .iter()
            .map(|n| catalog.delta(n).expect("registered").delta_len())
            .sum();
        t.row(vec![
            name.to_owned(),
            mode.to_owned(),
            delta_rows.to_string(),
            rounds.to_string(),
            first.len().to_string(),
            ms(secs[secs.len() / 2]),
            ms(secs[secs.len() - 1]),
            (hits - stats_before.0).to_string(),
            (refreshes - stats_before.1).to_string(),
            (misses - stats_before.2).to_string(),
            "true".to_owned(),
        ]);
        (hits, refreshes, misses)
    };

    for (name, rels, domain) in instances {
        let mut catalog = Catalog::new();
        // Keep auto-compaction out of the way: compaction timing is the
        // regime boundary here, not a background effect.
        catalog.set_compact_threshold(usize::MAX);
        for (rel_name, rel) in ["R", "S", "T"].iter().zip(rels) {
            catalog.insert(*rel_name, rel);
        }

        // Frozen reference.
        let stats = regime(&mut t, name, "base", &catalog, &q, (0, 0, 0));

        // Sustained ingest: alternate append/delete batches, querying
        // after each batch so every round re-merges grown buffers.
        let mut seed = 0x1A7E_0001u64 ^ domain;
        let mut step = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for b in 0..batches {
            for rel_name in ["R", "S", "T"] {
                let rows: Vec<Vec<Value>> = (0..batch_rows)
                    .map(|_| vec![Value(step() % domain), Value(step() % domain)])
                    .collect();
                let changed = if b % 3 == 2 {
                    catalog.delete_rows(rel_name, &rows)
                } else {
                    catalog.insert_rows(rel_name, &rows)
                };
                changed.expect("mutation").expect("registered");
            }
            let _ = execute(&q, &catalog).expect("mid-ingest query");
        }
        let stats = regime(&mut t, name, "fresh", &catalog, &q, stats);

        // Fold the buffers into fresh bases and measure the recovery.
        for rel_name in ["R", "S", "T"] {
            assert!(catalog.compact(rel_name), "{name}: buffers to fold");
            assert_eq!(catalog.delta(rel_name).expect("registered").delta_len(), 0);
        }
        regime(&mut t, name, "compacted", &catalog, &q, stats);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Quick smoke runs of every experiment (the harness does full sweeps).
    #[test]
    fn e1_smoke() {
        let t = e1_triangle_hard(true);
        assert_eq!(t[0].rows.len(), 2);
    }
    #[test]
    fn e2_smoke() {
        let t = e2_agm_tight(true);
        // grid outputs equal N^1.5 exactly
        for row in &t[0].rows {
            assert_eq!(row[2], row[3]);
        }
    }
    #[test]
    fn e3_smoke() {
        assert_eq!(e3_lw_scaling(true).len(), 2);
    }
    #[test]
    fn e4_smoke() {
        let t = e4_impl(&[60, 120]);
        for row in &t[0].rows {
            assert_eq!(row[5], "true");
        }
    }
    #[test]
    fn e5_order_matches_paper() {
        let t = e5_figure2_tree();
        assert_eq!(t[0].rows[0][1], "1,4,2,5,3,6");
    }
    #[test]
    fn e6_smoke() {
        let t = e6_nprr_general(true);
        for row in &t[0].rows {
            assert_eq!(row[5], "true");
        }
    }
    #[test]
    fn e7_smoke() {
        let t = e7_lower_bound_gap(true);
        assert_eq!(t.len(), 2); // quick mode sweeps n ∈ {3, 4}
    }
    #[test]
    fn e8_smoke() {
        assert_eq!(e8_embedded_gap(true).len(), 2);
    }
    #[test]
    fn e9_smoke() {
        let t = e9_cycles(true);
        for row in &t[0].rows {
            assert_eq!(row[6], "true");
        }
    }
    #[test]
    fn e10_smoke() {
        let _ = e10_graph_queries(true);
    }
    #[test]
    fn e11_smoke() {
        let _ = e11_relaxed(true);
    }
    #[test]
    fn e12_smoke() {
        let t = e12_fd(true);
        // FD-aware bound must be smaller than blind for k ≥ 3
        let blind: f64 = t[0].rows[1][2].parse().unwrap();
        let fdb: f64 = t[0].rows[1][3].parse().unwrap();
        assert!(fdb < blind);
    }
    #[test]
    fn e13_smoke() {
        let _ = e13_bt(true);
    }
    #[test]
    fn e14_smoke() {
        let t = e14_full_cq();
        for row in &t[0].rows {
            assert_eq!(row[3], "true");
        }
    }
    #[test]
    fn e15_smoke() {
        let _ = e15_tighten();
    }
    #[test]
    fn e16_smoke() {
        let t = e16_par_scaling(true);
        // 2 instances × 4 thread counts; outputs agree by construction
        assert_eq!(t[0].rows.len(), 8);
    }
    #[test]
    fn e17_smoke() {
        let t = e17_service_throughput(true);
        // 3 concurrency levels; every row verified identical
        assert_eq!(t[0].rows.len(), 3);
        for row in &t[0].rows {
            assert_eq!(row[5], "true");
        }
    }
    #[test]
    fn e19_smoke() {
        let t = e19_overload_shedding(true);
        // 2 concurrency levels; identical verified, sheds reported
        assert_eq!(t[0].rows.len(), 2);
        for row in &t[0].rows {
            assert_eq!(row[6], "true");
            assert_eq!(row[1], row[2], "retries land every offered query");
        }
    }

    #[test]
    fn e20_smoke() {
        let t = e20_obs_profiles(true);
        // 6 instances; shard coverage, phase monotonicity, row totals,
        // and the exposition check are asserted inside the experiment
        assert_eq!(t[0].rows.len(), 6);
        for row in &t[0].rows {
            assert_eq!(row[6], "true");
            let shards: usize = row[1].parse().unwrap();
            assert!(shards >= 1, "{row:?}");
        }
    }

    #[test]
    fn e22_smoke() {
        let t = e22_ingest_latency(true);
        // 2 instances × 3 regimes; bit-identity against materialized
        // relations is asserted inside the experiment
        assert_eq!(t[0].rows.len(), 6);
        for row in &t[0].rows {
            match row[1].as_str() {
                "base" | "compacted" => assert_eq!(row[2], "0", "{row:?}"),
                "fresh" => {
                    let delta_rows: usize = row[2].parse().unwrap();
                    assert!(delta_rows > 0, "{row:?}");
                    let refreshes: u64 = row[8].parse().unwrap();
                    assert!(refreshes >= 1, "{row:?}");
                }
                other => panic!("unknown regime {other}"),
            }
            assert_eq!(row[10], "true");
        }
    }

    #[test]
    fn e21_smoke() {
        let t = e21_plan_cache(true);
        // 3 families; hit/miss accounting and bit-identical warm rounds
        // are asserted inside the experiment
        assert_eq!(t[0].rows.len(), 3);
        for row in &t[0].rows {
            assert_eq!(row[6], "3", "quick mode: 3 warm hits");
            assert_eq!(row[7], "1", "one cold build");
            assert_eq!(row[8], "true");
        }
    }

    #[test]
    fn e18_smoke() {
        let t = e18_heavy_key_scaling(true);
        // 2 instances × 2 modes × 4 thread counts; the asserts inside
        // already verified identical outputs and sub-shard presence
        assert_eq!(t[0].rows.len(), 16);
        for row in &t[0].rows {
            let threads: usize = row[2].parse().unwrap();
            let subs: usize = row[4].parse().unwrap();
            match (row[1].as_str(), threads) {
                ("split", t) if t > 1 => assert!(subs >= 2, "{row:?}"),
                _ => assert_eq!(subs, 0, "{row:?}"),
            }
        }
    }
}
