//! Experiment library: one function per experiment in `DESIGN.md` §4
//! (E1–E15), each regenerating the corresponding quantitative claim of the
//! paper as a printable/serialisable table.
//!
//! The paper has no empirical tables of its own (it is a theory paper), so
//! the "figures" reproduced here are its *worked examples, theorems, and
//! lower-bound constructions*; `EXPERIMENTS.md` records the expected vs
//! measured shape for each. The `harness` binary prints these tables and
//! can dump them as JSON.

pub mod experiments;
pub mod table;

pub use table::{time_secs, Table};

/// All experiment ids, in order. E1–E15 regenerate the paper's claims;
/// E16 records the partition-parallel engine's scaling, E17 the shared-
/// pool query service's concurrent throughput, E18 intra-value
/// parallelism on a single-hot-key workload, E19 service admission
/// control (shed counts + wait-latency percentiles under a flood), E20
/// per-query execution profiles and the scheduler trace ring, E21 the
/// prepared-plan cache's repeat-query submission cost drop, E22 query
/// latency under sustained ingest (fresh delta buffers vs compacted).
pub const ALL_EXPERIMENTS: [&str; 22] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22",
];

/// Runs one experiment by id. `quick` shrinks the sweeps for CI-speed runs.
///
/// # Panics
/// Panics on an unknown id (the harness validates ids first).
#[must_use]
pub fn run_experiment(id: &str, quick: bool) -> Vec<Table> {
    match id {
        "e1" => experiments::e1_triangle_hard(quick),
        "e2" => experiments::e2_agm_tight(quick),
        "e3" => experiments::e3_lw_scaling(quick),
        "e4" => experiments::e4_worked_example(),
        "e5" => experiments::e5_figure2_tree(),
        "e6" => experiments::e6_nprr_general(quick),
        "e7" => experiments::e7_lower_bound_gap(quick),
        "e8" => experiments::e8_embedded_gap(quick),
        "e9" => experiments::e9_cycles(quick),
        "e10" => experiments::e10_graph_queries(quick),
        "e11" => experiments::e11_relaxed(quick),
        "e12" => experiments::e12_fd(quick),
        "e13" => experiments::e13_bt(quick),
        "e14" => experiments::e14_full_cq(),
        "e15" => experiments::e15_tighten(),
        "e16" => experiments::e16_par_scaling(quick),
        "e17" => experiments::e17_service_throughput(quick),
        "e18" => experiments::e18_heavy_key_scaling(quick),
        "e19" => experiments::e19_overload_shedding(quick),
        "e20" => experiments::e20_obs_profiles(quick),
        "e21" => experiments::e21_plan_cache(quick),
        "e22" => experiments::e22_ingest_latency(quick),
        other => panic!("unknown experiment id {other}"),
    }
}
