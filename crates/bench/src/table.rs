//! Result tables: printable, serialisable, diffable.

use std::time::Instant;

/// One experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`e1` …).
    pub experiment: String,
    /// Human title (what claim this reproduces).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (pre-formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Expected shape per the paper, for EXPERIMENTS.md.
    pub expected: String,
}

impl Table {
    /// Starts a table.
    #[must_use]
    pub fn new(experiment: &str, title: &str, columns: &[&str], expected: &str) -> Table {
        Table {
            experiment: experiment.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
            expected: expected.to_owned(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Renders as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## [{}] {}\n", self.experiment, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&format!("expected: {}\n", self.expected));
        out
    }

    /// Renders as pretty-printed JSON (hand-rolled: the build environment
    /// is offline, so no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn str_array(items: &[String]) -> String {
            let inner: Vec<String> = items.iter().map(|s| esc(s)).collect();
            format!("[{}]", inner.join(", "))
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("    [{}]", cells.join(", "))
            })
            .collect();
        format!(
            "{{\n  \"experiment\": {},\n  \"title\": {},\n  \"columns\": {},\n  \"rows\": [\n{}\n  ],\n  \"expected\": {}\n}}\n",
            esc(&self.experiment),
            esc(&self.title),
            str_array(&self.columns),
            rows.join(",\n"),
            esc(&self.expected)
        )
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats seconds as milliseconds with 2 decimals.
#[must_use]
pub fn ms(secs: f64) -> String {
    format!("{:.2}", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("e0", "demo", &["N", "value"], "grows");
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## [e0] demo"));
        assert!(s.contains("expected: grows"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn timing_positive() {
        let (v, t) = time_secs(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(t >= 0.0);
        assert_eq!(ms(0.0015), "1.50");
    }
}
