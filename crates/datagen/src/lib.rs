//! Instance generators for every construction in NPRR 2012.
//!
//! Each generator corresponds to a specific piece of the paper (cited on
//! the item) and is deterministic given its seed, so experiments are
//! reproducible tuple-for-tuple.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wcoj_storage::{Relation, Schema, Value};

/// Uniform random relation over the given attributes: `n` rows drawn from
/// `[0, dom)` per column (duplicates collapse — the returned cardinality
/// can be below `n`).
#[must_use]
pub fn random_relation(seed: u64, attrs: &[u32], n: usize, dom: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
        .collect();
    Relation::from_rows(Schema::of(attrs), rows).expect("generator arity consistent")
}

/// Random relation with exactly `n` distinct rows (rejection sampling;
/// requires `dom^arity ≥ n`).
///
/// # Panics
/// Panics if the domain cannot hold `n` distinct rows.
#[must_use]
pub fn random_relation_exact(seed: u64, attrs: &[u32], n: usize, dom: u64) -> Relation {
    let capacity = (dom as f64).powi(attrs.len() as i32);
    assert!(
        capacity >= n as f64,
        "domain too small for {n} distinct rows"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < n {
        let row: Vec<Value> = attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect();
        seen.insert(row);
    }
    Relation::from_rows(Schema::of(attrs), seen.into_iter().collect())
        .expect("generator arity consistent")
}

/// Zipf-skewed relation: column values are drawn from `[0, dom)` with
/// probability `∝ 1/(rank+1)^s`. Used for the skew-sensitivity ablations.
#[must_use]
pub fn zipf_relation(seed: u64, attrs: &[u32], n: usize, dom: u64, s: f64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute the CDF once.
    let weights: Vec<f64> = (0..dom).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(dom as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample = |rng: &mut StdRng| -> u64 {
        let x: f64 = rng.gen();
        cdf.partition_point(|&c| c < x) as u64
    };
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| attrs.iter().map(|_| Value(sample(&mut rng))).collect())
        .collect();
    Relation::from_rows(Schema::of(attrs), rows).expect("generator arity consistent")
}

/// **Example 2.2** (and §1): the pathological triangle family. Returns
/// `[R(A,B), S(B,C), T(A,C)]`, each of cardinality `n` (`n` even), such
/// that every pairwise join has `n²/4 + n/2` tuples while the triangle
/// join is empty.
///
/// # Panics
/// Panics if `n` is odd or zero.
#[must_use]
pub fn example_2_2(n: u64) -> Vec<Relation> {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "Example 2.2 needs even n ≥ 2"
    );
    let rows: Vec<Vec<Value>> = (1..=n / 2)
        .map(|j| vec![Value(0), Value(j)])
        .chain((1..=n / 2).map(|j| vec![Value(j), Value(0)]))
        .collect();
    [(0u32, 1u32), (1, 2), (0, 2)]
        .iter()
        .map(|&(a, b)| Relation::from_rows(Schema::of(&[a, b]), rows.clone()).expect("pairs"))
        .collect()
}

/// AGM-tightness instance for the triangle query: `R = S = T = [k] × [k]`
/// (as (A,B), (B,C), (A,C) respectively), so `N = k²` and
/// `|R ⋈ S ⋈ T| = k³ = N^{3/2}` — the AGM bound with equality (§1/§2).
#[must_use]
pub fn agm_tight_triangle(k: u64) -> Vec<Relation> {
    let grid: Vec<Vec<Value>> = (0..k)
        .flat_map(|a| (0..k).map(move |b| vec![Value(a), Value(b)]))
        .collect();
    [(0u32, 1u32), (1, 2), (0, 2)]
        .iter()
        .map(|&(a, b)| Relation::from_rows(Schema::of(&[a, b]), grid.clone()).expect("grid"))
        .collect()
}

/// **Lemma 6.1**: "simple" relations for the LW lower-bound family. For
/// each `i ∈ [n]`, the relation on attributes `[n] ∖ {i}` contains every
/// tuple over domain `{0..⌊(N−1)/(n−1)⌋}` with **at most one non-zero
/// coordinate**, giving `|R_i| ≈ N`. Any join-project plan pays
/// `Ω(N²/n²)` on these, while the full join has only `≈ N + N/(n−1)`
/// tuples.
#[must_use]
pub fn simple_lw(n: usize, cap: u64) -> Vec<Relation> {
    assert!(n >= 3, "the lower bound family needs n ≥ 3");
    let d = (cap - 1) / (n as u64 - 1); // domain max
    (0..n)
        .map(|omit| {
            let attrs: Vec<u32> = (0..n as u32).filter(|&v| v != omit as u32).collect();
            let arity = attrs.len();
            let mut rows: Vec<Vec<Value>> = vec![vec![Value(0); arity]];
            for pos in 0..arity {
                for v in 1..=d {
                    let mut row = vec![Value(0); arity];
                    row[pos] = Value(v);
                    rows.push(row);
                }
            }
            Relation::from_rows(Schema::of(&attrs), rows).expect("simple rows")
        })
        .collect()
}

/// The paper's §5.2 worked example (Figure 1/2 query): five relations over
/// six attributes with the incidence matrix `M` given in the paper, filled
/// with random data.
#[must_use]
pub fn worked_example(seed: u64, n: usize, dom: u64) -> Vec<Relation> {
    // The incidence matrix M of §5.2 (attributes 1..6, edges a..e),
    // 0-based: a={1,2,4,5}→{0,1,3,4}, b={1,3,4,6}→{0,2,3,5},
    // c={1,2,3}→{0,1,2}, d={2,4,6}→{1,3,5}, e={3,5,6}→{2,4,5}.
    let shapes: [&[u32]; 5] = [
        &[0, 1, 3, 4], // R_a
        &[0, 2, 3, 5], // R_b
        &[0, 1, 2],    // R_c
        &[1, 3, 5],    // R_d
        &[2, 4, 5],    // R_e
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, attrs)| random_relation(seed.wrapping_add(i as u64), attrs, n, dom))
        .collect()
}

/// Cycle query instance: `m` binary relations forming the cycle
/// `A_0 — A_1 — … — A_{m−1} — A_0`, each with `n` random rows over
/// `[0, dom)` (Lemma 7.1 / experiment E9).
#[must_use]
pub fn cycle_instance(seed: u64, m: usize, n: usize, dom: u64) -> Vec<Relation> {
    (0..m)
        .map(|i| {
            random_relation(
                seed.wrapping_add(i as u64),
                &[i as u32, ((i + 1) % m) as u32],
                n,
                dom,
            )
        })
        .collect()
}

/// §7.3's functional-dependency family:
/// `q = (⋈ᵢ Rᵢ(A, Bᵢ)) ⋈ (⋈ᵢ Sᵢ(Bᵢ, C))` with FDs `A → Bᵢ` — each
/// `Rᵢ` maps `a ↦ bᵢ(a) = a·k + i` functionally; each `Sᵢ` is random.
/// Returns `(relations, fd list as (edge, from_attr, to_attr))`.
/// Attributes: `A = 0`, `Bᵢ = i + 1`, `C = k + 1`.
#[must_use]
pub fn fd_family(seed: u64, k: u32, n: usize) -> (Vec<Relation>, Vec<(usize, u32, u32)>) {
    let mut rels = Vec::new();
    let mut fds = Vec::new();
    for i in 0..k {
        let rows: Vec<Vec<Value>> = (0..n as u64)
            .map(|a| vec![Value(a), Value(a * u64::from(k) + u64::from(i))])
            .collect();
        rels.push(Relation::from_rows(Schema::of(&[0, i + 1]), rows).expect("fd rows"));
        fds.push((i as usize, 0u32, i + 1));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..k {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    Value(rng.gen_range(0..(n as u64) * u64::from(k))),
                    Value(rng.gen_range(0..16u64)),
                ]
            })
            .collect();
        rels.push(Relation::from_rows(Schema::of(&[i + 1, k + 1]), rows).expect("fd rows"));
    }
    (rels, fds)
}

/// §7.2's relaxed-join tightness instance: unary relations `R_{eᵢ} = [N]`
/// for `i ∈ [n]` plus `R_{e_{n+1}} = {(N+i, …, N+i)}ᵢ` over all `n`
/// attributes. For `r = n`, `q_r = R_{e_{n+1}} ∪ [N]ⁿ` with `N + Nⁿ`
/// tuples.
#[must_use]
pub fn relaxed_tight(n: u32, cap: u64) -> Vec<Relation> {
    let mut rels: Vec<Relation> = (0..n)
        .map(|i| {
            let rows: Vec<Vec<Value>> = (1..=cap).map(|v| vec![Value(v)]).collect();
            Relation::from_rows(Schema::of(&[i]), rows).expect("unary")
        })
        .collect();
    let attrs: Vec<u32> = (0..n).collect();
    let rows: Vec<Vec<Value>> = (1..=cap)
        .map(|i| vec![Value(cap + i); n as usize])
        .collect();
    rels.push(Relation::from_rows(Schema::of(&attrs), rows).expect("diag"));
    rels
}

/// **Lemma 6.3**'s embedded-gap family: the Lemma 6.1 simple-LW core on
/// `k` attributes, plus one pendant relation attaching a fresh attribute
/// with the constant value `c₀` — binary plans still must join two core
/// relations (Ω(N²/k²)), while the fractional cover `1/(k−1)` on the core
/// keeps NPRR at `O(N^{1+1/(k−1)})`.
#[must_use]
pub fn embedded_gap(k: usize, cap: u64) -> Vec<Relation> {
    let mut rels = simple_lw(k, cap);
    // pendant P(A_0, A_k) = π_{A0}(core values) × {c0 = 0}
    let d = (cap - 1) / (k as u64 - 1);
    let rows: Vec<Vec<Value>> = (0..=d).map(|v| vec![Value(v), Value(0)]).collect();
    rels.push(Relation::from_rows(Schema::of(&[0, k as u32]), rows).expect("pendant"));
    rels
}

/// Erdős–Rényi-style random graph as an edge relation `E(src=0, dst=1)`
/// with `n_edges` distinct directed edges over `n_vertices` (self-loops
/// removed). Used by the triangle-listing example.
#[must_use]
pub fn random_graph_edges(seed: u64, n_vertices: u64, n_edges: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    let max_possible = (n_vertices * n_vertices.saturating_sub(1)) as usize;
    let target = n_edges.min(max_possible);
    while seen.len() < target {
        let a = rng.gen_range(0..n_vertices);
        let b = rng.gen_range(0..n_vertices);
        if a != b {
            seen.insert(vec![Value(a), Value(b)]);
        }
    }
    Relation::from_rows(Schema::of(&[0, 1]), seen.into_iter().collect()).expect("edges")
}

/// A power-law ("social") graph via preferential attachment: each new
/// vertex attaches `out_degree` edges to earlier vertices with probability
/// proportional to current degree — triangle-dense, the workload class the
/// paper's introduction motivates.
#[must_use]
pub fn preferential_attachment_edges(seed: u64, n_vertices: u64, out_degree: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut targets: Vec<u64> = vec![0, 1]; // degree-weighted pool
    let mut rows: Vec<Vec<Value>> = vec![vec![Value(0), Value(1)]];
    for v in 2..n_vertices {
        for _ in 0..out_degree {
            let idx = rand::distributions::Uniform::new(0, targets.len()).sample(&mut rng);
            let u = targets[idx];
            if u != v {
                rows.push(vec![Value(v.min(u)), Value(v.max(u))]);
                targets.push(u);
                targets.push(v);
            }
        }
    }
    Relation::from_rows(Schema::of(&[0, 1]), rows).expect("edges")
}

/// Random Loomis–Whitney instance: `n` relations on the `(n−1)`-subsets of
/// `[n]`, each with `rows` random tuples over `[0, dom)`.
#[must_use]
pub fn random_lw(seed: u64, n: usize, rows: usize, dom: u64) -> Vec<Relation> {
    (0..n)
        .map(|omit| {
            let attrs: Vec<u32> = (0..n as u32).filter(|&v| v != omit as u32).collect();
            random_relation(seed.wrapping_add(omit as u64), &attrs, rows, dom)
        })
        .collect()
}

/// Single-hot-key triangle `R(0,1) ⋈ S(1,2) ⋈ T(0,2)`: attribute 1 (the
/// root of the triangle's NPRR total order) has one **hot** value `0`
/// with `hot` distinct extensions in both `R` and `S`, plus `light`
/// further values with a single extension each — so the hot root value
/// carries a `≈ 2·hot / (2·hot + 3·light)` share of the estimated work
/// (≥ 90% whenever `hot ≥ 14·light`). `T` holds `4·hot` random pairs
/// over the hot key's candidate grid, keeping the per-pair probes
/// non-trivial.
///
/// This is the workload intra-value parallelism exists for: without
/// anchor sub-shards the hot root value is one singleton shard pinning a
/// single worker while the rest of the pool drains.
#[must_use]
pub fn hot_key_triangle(seed: u64, hot: usize, light: usize) -> Vec<Relation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot_u = hot as u64;
    // R(0,1): hot value 0 of attribute 1 pairs with every a ∈ [0, hot).
    let mut r_rows: Vec<Vec<Value>> = (0..hot_u).map(|a| vec![Value(a), Value(0)]).collect();
    // S(1,2): hot value 0 of attribute 1 pairs with every c ∈ [0, hot).
    let mut s_rows: Vec<Vec<Value>> = (0..hot_u).map(|c| vec![Value(0), Value(c)]).collect();
    // Light values 1..=light of attribute 1: one extension each.
    for i in 1..=light as u64 {
        r_rows.push(vec![Value(rng.gen_range(0..hot_u.max(1))), Value(i)]);
        s_rows.push(vec![Value(i), Value(rng.gen_range(0..hot_u.max(1)))]);
    }
    let r = Relation::from_rows(Schema::of(&[0, 1]), r_rows).expect("arity 2");
    let s = Relation::from_rows(Schema::of(&[1, 2]), s_rows).expect("arity 2");
    let t = random_relation(seed.wrapping_add(1), &[0, 2], 4 * hot, hot_u.max(1));
    vec![r, s, t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::ops::natural_join;

    #[test]
    fn example_2_2_properties() {
        for n in [4u64, 8, 16, 32] {
            let rels = example_2_2(n);
            for r in &rels {
                assert_eq!(r.len(), n as usize, "cardinality is N");
            }
            // pairwise join size = N²/4 + N/2 (paper Example 2.2 property 2)
            let rs = natural_join(&rels[0], &rels[1]);
            assert_eq!(rs.len(), (n * n / 4 + n / 2) as usize);
            // triangle is empty (property 3)
            let j = natural_join(&rs, &rels[2]);
            assert!(j.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn example_2_2_odd_rejected() {
        let _ = example_2_2(5);
    }

    #[test]
    fn hot_key_triangle_is_skewed() {
        let rels = hot_key_triangle(9, 64, 4);
        assert_eq!(rels.len(), 3);
        // hot value 0 of attribute 1 has 64 extensions in R and S
        let hot_in_r = rels[0].iter_rows().filter(|r| r[1] == Value(0)).count();
        let hot_in_s = rels[1].iter_rows().filter(|r| r[0] == Value(0)).count();
        assert_eq!(hot_in_r, 64);
        assert_eq!(hot_in_s, 64);
        // light values have exactly one extension each
        for i in 1..=4u64 {
            assert_eq!(rels[0].iter_rows().filter(|r| r[1] == Value(i)).count(), 1);
            assert_eq!(rels[1].iter_rows().filter(|r| r[0] == Value(i)).count(), 1);
        }
        // the hot key carries ≥ 90% of the level-1 fanout work
        let hot_work = (hot_in_r + hot_in_s) as f64;
        let total: f64 = hot_work + (2 * 4) as f64;
        assert!(hot_work / total >= 0.9, "{hot_work}/{total}");
        // deterministic given the seed
        let again = hot_key_triangle(9, 64, 4);
        for (a, b) in rels.iter().zip(&again) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn agm_tight_triangle_attains_bound() {
        for k in [2u64, 3, 4, 6] {
            let rels = agm_tight_triangle(k);
            let n = (k * k) as usize;
            assert!(rels.iter().all(|r| r.len() == n));
            let j = natural_join(&natural_join(&rels[0], &rels[1]), &rels[2]);
            assert_eq!(j.len(), (k * k * k) as usize, "output = N^(3/2)");
        }
    }

    #[test]
    fn simple_lw_shapes() {
        for n in [3usize, 4, 6] {
            let cap = 61u64;
            let rels = simple_lw(n, cap);
            assert_eq!(rels.len(), n);
            let d = (cap - 1) / (n as u64 - 1);
            let expect = (n - 1) as u64 * d + 1;
            for r in &rels {
                assert_eq!(r.arity(), n - 1);
                assert_eq!(r.len() as u64, expect, "|R_i| = (n−1)·d + 1 ≈ N");
            }
            // every tuple has ≤ 1 non-zero coordinate
            for r in &rels {
                for row in r.iter_rows() {
                    let nz = row.iter().filter(|v| v.0 != 0).count();
                    assert!(nz <= 1);
                }
            }
        }
    }

    #[test]
    fn simple_lw_join_is_linear_not_quadratic() {
        let n = 3usize;
        let cap = 41u64;
        let rels = simple_lw(n, cap);
        let d = (cap - 1) / (n as u64 - 1);
        // pairwise join of two simple relations with crossing attr sets is
        // ~ (d+1)² (the Ω(N²/n²) blow-up)…
        let pair = natural_join(&rels[0], &rels[1]);
        assert!(pair.len() as u64 >= (d + 1) * (d + 1));
        // …but the full join stays ≈ N + d (all-zero + axis points).
        let full = natural_join(&pair, &rels[2]);
        assert_eq!(full.len() as u64, n as u64 * d + 1);
    }

    #[test]
    fn relaxed_tight_shape() {
        let rels = relaxed_tight(3, 4);
        assert_eq!(rels.len(), 4);
        assert!(rels[..3].iter().all(|r| r.len() == 4 && r.arity() == 1));
        assert_eq!(rels[3].arity(), 3);
        assert_eq!(rels[3].len(), 4);
    }

    #[test]
    fn fd_family_is_functional() {
        let (rels, fds) = fd_family(5, 3, 10);
        assert_eq!(rels.len(), 6);
        assert_eq!(fds.len(), 3);
        for &(e, from, to) in &fds {
            let rel = &rels[e];
            let fpos = rel.schema().position(wcoj_storage::Attr(from)).unwrap();
            let tpos = rel.schema().position(wcoj_storage::Attr(to)).unwrap();
            let mut map = std::collections::HashMap::new();
            for row in rel.iter_rows() {
                let prev = map.insert(row[fpos], row[tpos]);
                assert!(prev.is_none() || prev == Some(row[tpos]));
            }
        }
    }

    #[test]
    fn graphs_have_requested_shape() {
        let g = random_graph_edges(3, 50, 200);
        assert_eq!(g.len(), 200);
        for row in g.iter_rows() {
            assert_ne!(row[0], row[1], "no self loops");
        }
        let pa = preferential_attachment_edges(4, 100, 3);
        assert!(pa.len() > 100);
    }

    #[test]
    fn determinism() {
        assert_eq!(
            random_relation(9, &[0, 1], 50, 10),
            random_relation(9, &[0, 1], 50, 10)
        );
        assert_ne!(
            random_relation(9, &[0, 1], 50, 10),
            random_relation(10, &[0, 1], 50, 10)
        );
    }

    #[test]
    fn exact_cardinality() {
        let r = random_relation_exact(5, &[0, 1], 64, 10);
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn zipf_is_skewed() {
        let r = zipf_relation(6, &[0], 2000, 100, 1.4);
        // value 0 should dominate: appears, and distinct count far below 100
        assert!(r.contains_row(&[Value(0)]));
        assert!(r.len() < 100);
    }

    #[test]
    fn cycle_instances_shape() {
        let rels = cycle_instance(7, 5, 30, 6);
        assert_eq!(rels.len(), 5);
        for (i, r) in rels.iter().enumerate() {
            assert_eq!(r.schema(), &Schema::of(&[i as u32, ((i + 1) % 5) as u32]));
        }
    }

    #[test]
    fn embedded_gap_shape() {
        let rels = embedded_gap(3, 31);
        assert_eq!(rels.len(), 4);
        assert_eq!(rels[3].arity(), 2);
        // pendant uses the fresh attribute k
        assert!(rels[3].schema().contains(wcoj_storage::Attr(3)));
    }

    #[test]
    fn worked_example_shapes() {
        let rels = worked_example(1, 20, 5);
        assert_eq!(rels.len(), 5);
        assert_eq!(rels[0].arity(), 4);
        assert_eq!(rels[2].arity(), 3);
    }
}
