//! Property test for the partition-parallel engine (mirrors the style of
//! `crates/storage/src/proptests.rs`): on random instances from
//! `wcoj-datagen`, `par_join` must produce exactly the sequential
//! `join_nprr` output — sorted row-set equality — for every thread count
//! in {1, 2, 4, 8} and both index backends. The intra-value parallelism
//! properties ride along: `heavy_split_factor` (0, 1, sensible, huge)
//! never changes output, and every planned sub-shard family tiles the
//! anchor domain exactly once — no gap, no overlap — against the
//! [`PreparedQuery::anchor_candidates`] slices.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::JoinQuery;
use wcoj_exec::{par_join_prepared, ExecConfig, ShardPlan, ShardSplit, OVERSPLIT};
use wcoj_storage::{HashTrieIndex, Relation, TrieIndex, Value};

/// Sorted row set of a relation — the canonical comparison form.
fn sorted_rows(rel: &Relation) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rel.iter_rows().map(<[Value]>::to_vec).collect();
    rows.sort_unstable();
    rows
}

/// A random multi-relation query instance: shapes drawn like the core
/// crate's `prop_nprr_matches_naive`, data from `wcoj-datagen`.
fn random_instance(seed: u64) -> Vec<Relation> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_attr = rng.gen_range(2..6u32);
    let n_rel = rng.gen_range(2..5usize);
    let mut rels = Vec::new();
    for i in 0..n_rel {
        let arity = rng.gen_range(1..=3.min(n_attr));
        let mut attrs: Vec<u32> = (0..n_attr).collect();
        for j in (1..attrs.len()).rev() {
            attrs.swap(j, rng.gen_range(0..=j));
        }
        attrs.truncate(arity as usize);
        attrs.sort_unstable();
        let count = rng.gen_range(5..40);
        let dom = rng.gen_range(2..8u64);
        rels.push(wcoj_datagen::random_relation(
            seed.wrapping_mul(31).wrapping_add(i as u64),
            &attrs,
            count,
            dom,
        ));
    }
    rels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `par_join` ≡ sequential `join_nprr` on random instances, across
    /// thread counts and index backends.
    #[test]
    fn par_join_equals_sequential(seed in 0u64..10_000) {
        let rels = random_instance(seed);
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let seq = wcoj_core::nprr::join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
        let expect = sorted_rows(&seq.relation);

        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let cfg = ExecConfig { threads, shard_min_size: 1, ..ExecConfig::default() };
            let a = par_join_prepared(&sorted, None, &cfg).unwrap();
            prop_assert_eq!(
                sorted_rows(&a.relation), expect.clone(),
                "sorted backend, {} threads, seed {}", threads, seed
            );
            prop_assert_eq!(a.relation.schema(), seq.relation.schema());
            let b = par_join_prepared(&hashed, None, &cfg).unwrap();
            prop_assert_eq!(
                sorted_rows(&b.relation), expect.clone(),
                "hash backend, {} threads, seed {}", threads, seed
            );
        }
    }

    /// Zipf-skewed triangles (heavy hitters stress the shard planner's
    /// oversplitting) still match exactly.
    #[test]
    fn par_join_equals_sequential_skewed(seed in 0u64..2_000) {
        let rels = [
            wcoj_datagen::zipf_relation(seed, &[0, 1], 150, 20, 1.2),
            wcoj_datagen::zipf_relation(seed + 1, &[1, 2], 150, 20, 1.2),
            wcoj_datagen::zipf_relation(seed + 2, &[0, 2], 150, 20, 1.2),
        ];
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let seq = wcoj_core::nprr::join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
        let par = wcoj_exec::par_join(&rels, &ExecConfig { threads: 4, shard_min_size: 1, ..ExecConfig::default() }).unwrap();
        prop_assert_eq!(sorted_rows(&par.relation), sorted_rows(&seq.relation));
    }

    /// `heavy_split_factor` is a pure performance knob: 0 and 1 (intra-
    /// value splitting disabled), small, large, and absurd values all
    /// produce exactly the sequential output — on random instances, on
    /// Zipf skew, and on the single-hot-key family, with both backends.
    #[test]
    fn heavy_split_factor_never_changes_output(seed in 0u64..2_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(6151));
        let instances: [Vec<Relation>; 3] = [
            random_instance(seed),
            vec![
                wcoj_datagen::zipf_relation(seed, &[0, 1], 120, 16, 1.4),
                wcoj_datagen::zipf_relation(seed + 1, &[1, 2], 120, 16, 1.4),
                wcoj_datagen::zipf_relation(seed + 2, &[0, 2], 120, 16, 1.4),
            ],
            wcoj_datagen::hot_key_triangle(seed, 48, 4),
        ];
        for (which, rels) in instances.iter().enumerate() {
            let q = JoinQuery::new(rels).unwrap();
            let sol = q.optimal_cover().unwrap();
            let seq = wcoj_core::nprr::join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
            let expect = sorted_rows(&seq.relation);
            let sorted = PreparedQuery::<TrieIndex>::new_indexed(rels).unwrap();
            let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(rels).unwrap();
            let threads = [2usize, 4, 8][rng.gen_range(0..3usize)];
            for factor in [0usize, 1, 2, 8, 1 << 20, usize::MAX] {
                let cfg = ExecConfig {
                    threads,
                    shard_min_size: 1,
                    split: ShardSplit::Work,
                    heavy_split_factor: factor,
                };
                let a = par_join_prepared(&sorted, None, &cfg).unwrap();
                prop_assert_eq!(
                    sorted_rows(&a.relation), expect.clone(),
                    "instance {}, factor {}, seed {}", which, factor, seed
                );
                let b = par_join_prepared(&hashed, None, &cfg).unwrap();
                prop_assert_eq!(
                    sorted_rows(&b.relation), expect.clone(),
                    "hash, instance {}, factor {}, seed {}", which, factor, seed
                );
            }
        }
    }

    /// Planner soundness: every plan tiles root × anchor space exactly
    /// once. Root ranges are gap-free over `[0, u64::MAX]`; within a run
    /// of sub-shards sharing a root range the anchor ranges are gap-free
    /// over `[0, u64::MAX]`; and every `PreparedQuery::anchor_candidates`
    /// slice value of every root candidate in a sub-split range falls in
    /// exactly one sub-shard.
    #[test]
    fn sub_shard_plans_tile_the_anchor_domain(seed in 0u64..2_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(3571));
        let rels = if seed % 3 == 0 {
            random_instance(seed)
        } else {
            wcoj_datagen::hot_key_triangle(seed, 16 + (seed % 97) as usize, (seed % 9) as usize)
        };
        let prepared = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let factor = [2usize, 4, 8, 64][rng.gen_range(0..4usize)];
        let threads = [2usize, 4, 8][rng.gen_range(0..3usize)];
        let cfg = ExecConfig {
            threads,
            shard_min_size: 1,
            split: ShardSplit::Work,
            heavy_split_factor: factor,
        };
        let plan = ShardPlan::plan(&prepared, threads * OVERSPLIT, &cfg);
        // degenerate single-run plans have nothing to tile
        let shards = plan.shards();
        if !shards.is_empty() {
        // task budget: never more than 3 × requested + 1
        prop_assert!(shards.len() <= 3 * threads * OVERSPLIT + 1, "{:?}", shards);
        // root ranges tile [0, u64::MAX]
        prop_assert_eq!(shards[0].lo, Value(0));
        prop_assert_eq!(shards.last().unwrap().hi, Value(u64::MAX));
        let mut i = 0;
        while i < shards.len() {
            let s = shards[i];
            let mut j = i + 1;
            while j < shards.len() && shards[j].lo == s.lo {
                prop_assert_eq!(shards[j].hi, s.hi, "run shares root range");
                j += 1;
            }
            if s.anchor.is_some() || j - i > 1 {
                // a run of anchor sub-shards: tiles [0, u64::MAX]
                prop_assert!(j - i >= 2, "anchored run has ≥ 2 sub-shards");
                let mut alo = 0u64;
                for sub in &shards[i..j] {
                    let a = sub.anchor.expect("run fully anchored");
                    prop_assert_eq!(a.lo.0, alo, "anchor ranges gap-free");
                    prop_assert!(a.lo <= a.hi);
                    alo = a.hi.0.wrapping_add(1);
                }
                prop_assert_eq!(shards[j - 1].anchor.unwrap().hi, Value(u64::MAX));
                // every anchor candidate of every root candidate in the
                // range is owned by exactly one sub-shard
                for v in prepared
                    .root_candidates()
                    .into_iter()
                    .filter(|&v| s.contains(v))
                {
                    for a in prepared.anchor_candidates(v) {
                        let owners = shards[i..j]
                            .iter()
                            .filter(|sub| sub.anchor_contains(a))
                            .count();
                        prop_assert_eq!(
                            owners, 1,
                            "anchor candidate {:?} under root {:?} owned once", a, v
                        );
                    }
                }
            }
            if j < shards.len() {
                prop_assert_eq!(shards[j].lo.0, s.hi.0.wrapping_add(1), "root gap-free");
            }
            i = j;
        }
        // differential backstop: summing the per-shard runs re-creates the
        // unrestricted row set exactly (no row lost or double-counted)
        let (x, b) = prepared.resolve_cover(None).unwrap();
        let (mut expect, _) = prepared.run_shard(&x, b, None);
        let mut got: Vec<Vec<Value>> = Vec::new();
        for &shard in shards {
            got.extend(prepared.run_shard(&x, b, Some(shard)).0);
        }
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect, "shard row sets partition the output");
        }
    }
}
