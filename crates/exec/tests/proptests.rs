//! Property test for the partition-parallel engine (mirrors the style of
//! `crates/storage/src/proptests.rs`): on random instances from
//! `wcoj-datagen`, `par_join` must produce exactly the sequential
//! `join_nprr` output — sorted row-set equality — for every thread count
//! in {1, 2, 4, 8} and both index backends.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::JoinQuery;
use wcoj_exec::{par_join_prepared, ExecConfig};
use wcoj_storage::{HashTrieIndex, Relation, TrieIndex, Value};

/// Sorted row set of a relation — the canonical comparison form.
fn sorted_rows(rel: &Relation) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rel.iter_rows().map(<[Value]>::to_vec).collect();
    rows.sort_unstable();
    rows
}

/// A random multi-relation query instance: shapes drawn like the core
/// crate's `prop_nprr_matches_naive`, data from `wcoj-datagen`.
fn random_instance(seed: u64) -> Vec<Relation> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_attr = rng.gen_range(2..6u32);
    let n_rel = rng.gen_range(2..5usize);
    let mut rels = Vec::new();
    for i in 0..n_rel {
        let arity = rng.gen_range(1..=3.min(n_attr));
        let mut attrs: Vec<u32> = (0..n_attr).collect();
        for j in (1..attrs.len()).rev() {
            attrs.swap(j, rng.gen_range(0..=j));
        }
        attrs.truncate(arity as usize);
        attrs.sort_unstable();
        let count = rng.gen_range(5..40);
        let dom = rng.gen_range(2..8u64);
        rels.push(wcoj_datagen::random_relation(
            seed.wrapping_mul(31).wrapping_add(i as u64),
            &attrs,
            count,
            dom,
        ));
    }
    rels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `par_join` ≡ sequential `join_nprr` on random instances, across
    /// thread counts and index backends.
    #[test]
    fn par_join_equals_sequential(seed in 0u64..10_000) {
        let rels = random_instance(seed);
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let seq = wcoj_core::nprr::join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
        let expect = sorted_rows(&seq.relation);

        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let cfg = ExecConfig { threads, shard_min_size: 1, ..ExecConfig::default() };
            let a = par_join_prepared(&sorted, None, &cfg).unwrap();
            prop_assert_eq!(
                sorted_rows(&a.relation), expect.clone(),
                "sorted backend, {} threads, seed {}", threads, seed
            );
            prop_assert_eq!(a.relation.schema(), seq.relation.schema());
            let b = par_join_prepared(&hashed, None, &cfg).unwrap();
            prop_assert_eq!(
                sorted_rows(&b.relation), expect.clone(),
                "hash backend, {} threads, seed {}", threads, seed
            );
        }
    }

    /// Zipf-skewed triangles (heavy hitters stress the shard planner's
    /// oversplitting) still match exactly.
    #[test]
    fn par_join_equals_sequential_skewed(seed in 0u64..2_000) {
        let rels = [
            wcoj_datagen::zipf_relation(seed, &[0, 1], 150, 20, 1.2),
            wcoj_datagen::zipf_relation(seed + 1, &[1, 2], 150, 20, 1.2),
            wcoj_datagen::zipf_relation(seed + 2, &[0, 2], 150, 20, 1.2),
        ];
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let seq = wcoj_core::nprr::join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
        let par = wcoj_exec::par_join(&rels, &ExecConfig { threads: 4, shard_min_size: 1, ..ExecConfig::default() }).unwrap();
        prop_assert_eq!(sorted_rows(&par.relation), sorted_rows(&seq.relation));
    }
}
