//! # wcoj-exec — partition-parallel worst-case-optimal join execution
//!
//! The NPRR `Recursive-Join` (paper §5.2, Procedure 5) is embarrassingly
//! parallel at the root of the total order. The paper's step 2a observes
//! that for a tuple prefix `t`, the trie subtree under the branch for `t`
//! **is** the search tree of the section `Rₑ[t]`; in particular, the
//! sub-computations of `Recursive-Join` for two different values `a ≠ b`
//! of the *first* attribute in the total order touch disjoint subtrees of
//! every index and produce disjoint sets of output tuples (every output
//! tuple binds the root attribute exactly once). Sub-joins for disjoint
//! value ranges of the root attribute are therefore fully independent: no
//! shared mutable state, no coordination, and a deterministic merge by
//! simple concatenation in root-value order.
//!
//! This crate turns that observation into an execution engine:
//!
//! 1. **Shard planning** — walk level 0 of the prepared
//!    [`SearchTree`] indexes ([`PreparedQuery::root_candidates`]: the
//!    sorted intersection of root-level values over all relations
//!    containing the root attribute) and split the candidate list into
//!    contiguous ranges — by estimated per-candidate *work* (level-1
//!    fanout, [`ShardSplit::Work`], the default) or by plain candidate
//!    count ([`ShardSplit::Candidates`]). Under work-based sizing the
//!    plan is **two-level**: a heavy root value is first isolated, and
//!    one heavy enough to span several work targets is further broken
//!    into *anchor sub-shards* — [`RootShard`]s carrying an
//!    [`AnchorRange`] over the level-1 attribute
//!    ([`ExecConfig::heavy_split_factor`], env `WCOJ_HEAVY_SPLIT`) — so
//!    even a single hot key spreads across workers instead of pinning
//!    one. The ranges jointly cover the whole value domain (root ×
//!    anchor), so correctness never depends on the candidate computation
//!    being tight. The reusable [`ShardPlan`] is also what the
//!    `wcoj-service` shared-pool scheduler executes.
//! 2. **Parallel run** — a fixed-size pool of scoped worker threads pulls
//!    shards off an atomic cursor (cheap work stealing: shards are
//!    oversplit ~4× relative to the thread count so a skewed shard cannot
//!    serialise the run) and evaluates each with the sequential engine
//!    restricted to the shard's root range ([`PreparedQuery::run_shard`]).
//!    All workers share the same prepared indexes and the same fractional
//!    cover, so every per-tuple size check (Procedure 5, line 21) sees
//!    exactly the counts the sequential run would see.
//! 3. **Deterministic merge** — per-shard row sets are concatenated in
//!    root-value (= shard) order and assembled through the same
//!    sort/dedup/reorder path as the sequential engine, so the output
//!    relation is bit-identical to `join_nprr`'s. Per-worker [`JoinStats`]
//!    are folded with [`JoinStats::absorb`].
//!
//! Entry points: [`par_join`] / [`par_join_with_cover`] for one-shot
//! queries, [`par_join_prepared`] to reuse indexes across runs, and
//! [`install`] to register the engine as `wcoj-core`'s
//! [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
//! executor (the `wcoj` facade and `wcoj-query` call it automatically).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wcoj_core::nprr::{AnchorRange, PreparedQuery, RootShard};
use wcoj_core::{JoinOutput, JoinQuery, JoinStats, QueryError};
use wcoj_obs::{TraceEvent, TraceLevel};
use wcoj_storage::{Relation, SearchTree, TrieIndex, Value};

/// How the planner carves the root-candidate list into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardSplit {
    /// Equal *candidate counts* per shard (the original strategy): cheap,
    /// but a single hot key with a fat section pins a whole worker while
    /// its siblings idle.
    Candidates,
    /// Equal estimated *work* per shard, from the level-1 fanout of the
    /// prepared indexes ([`PreparedQuery::root_candidate_weights`]): heavy
    /// root values are split out into their own shards so skew cannot
    /// serialise the run.
    #[default]
    Work,
}

/// Knobs of the parallel executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads. `1` runs the sequential engine in-place.
    pub threads: usize,
    /// Minimum number of root-attribute candidate values per shard; the
    /// planner never splits finer than this (oversplitting tiny domains
    /// only buys scheduling overhead).
    pub shard_min_size: usize,
    /// Shard-sizing strategy (work-based by default).
    pub split: ShardSplit,
    /// Intra-value parallelism for heavy root values
    /// ([`ShardSplit::Work`] only): the maximum number of anchor
    /// sub-shards one root value may be broken into. A root value whose
    /// estimated weight spans `s ≥ 2` per-shard work targets is split
    /// into `min(s, heavy_split_factor)` sub-shards over the level-1
    /// anchor domain ([`PreparedQuery::anchor_candidates`]), so a single
    /// hot key no longer pins one worker while the rest of the pool
    /// drains. `0` or `1` disables intra-value splitting (heavy values
    /// fall back to PR 2's singleton-shard isolation).
    pub heavy_split_factor: usize,
}

/// Default [`ExecConfig::heavy_split_factor`]: twice the [`OVERSPLIT`]
/// factor, so even a query whose whole root domain is one hot value
/// yields enough sub-shards to keep a small pool busy with stealing room.
pub const HEAVY_SPLIT_DEFAULT: usize = OVERSPLIT * 2;

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            shard_min_size: 16,
            split: ShardSplit::default(),
            heavy_split_factor: HEAVY_SPLIT_DEFAULT,
        }
    }
}

impl ExecConfig {
    /// A config with `threads` workers and the default shard floor.
    #[must_use]
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// Default config overridden by the `WCOJ_THREADS`,
    /// `WCOJ_SHARD_MIN_SIZE`, `WCOJ_SHARD_SPLIT` (`work`/`candidates`),
    /// and `WCOJ_HEAVY_SPLIT` (max sub-shards per heavy root value; `0`
    /// disables intra-value splitting) environment variables when set —
    /// how the
    /// [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
    /// dispatch path (which carries no config) is tuned.
    #[must_use]
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Some(t) = read_env_usize("WCOJ_THREADS") {
            cfg.threads = t.max(1);
        }
        if let Some(m) = read_env_usize("WCOJ_SHARD_MIN_SIZE") {
            cfg.shard_min_size = m.max(1);
        }
        match std::env::var("WCOJ_SHARD_SPLIT").as_deref().map(str::trim) {
            Ok("candidates") => cfg.split = ShardSplit::Candidates,
            Ok("work") => cfg.split = ShardSplit::Work,
            Ok(other) => warn_malformed_env(
                "WCOJ_SHARD_SPLIT",
                &format!("unrecognised value {other:?} (expected \"work\" or \"candidates\")"),
            ),
            Err(_) => {}
        }
        if let Some(k) = read_env_usize("WCOJ_HEAVY_SPLIT") {
            cfg.heavy_split_factor = k;
        }
        cfg
    }
}

/// Keys of `WCOJ_*` environment knobs whose values were malformed, in the
/// order first seen. Each key is warned about (on stderr) exactly once per
/// process; this registry lets tests and diagnostics observe that a knob
/// silently fell back to its default.
static MALFORMED_ENV: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Records (and warns once per key about) a malformed environment knob.
fn warn_malformed_env(key: &str, problem: &str) {
    let mut seen = MALFORMED_ENV
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if seen.iter().any(|k| k == key) {
        return;
    }
    seen.push(key.to_owned());
    eprintln!("wcoj: ignoring {key}: {problem}; using the default");
}

/// Records (and warns once per key about) a malformed environment knob —
/// the hook for `WCOJ_*` knobs whose values are not plain `usize`s (e.g.
/// `wcoj-server`'s `WCOJ_BIND` socket address), so they share the same
/// warn-once registry as the numeric knobs read via [`read_env_usize`].
pub fn note_malformed_env(key: &str, problem: &str) {
    warn_malformed_env(key, problem);
}

/// Environment knobs that have been warned about as malformed so far (one
/// entry per key, first-seen order). A `WCOJ_HEAVY_SPLIT=eight` typo no
/// longer reverts to the default with *no* signal: the first read warns on
/// stderr and the key shows up here.
#[must_use]
pub fn malformed_env_warnings() -> Vec<String> {
    MALFORMED_ENV
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Reads a `usize` environment knob. Unset → `None`; malformed (not a
/// non-negative integer) → `None` **plus** a one-time stderr warning and an
/// entry in [`malformed_env_warnings`], so a typo like
/// `WCOJ_HEAVY_SPLIT=eight` cannot silently revert to defaults. Shared by
/// every numeric `WCOJ_*` knob (`WCOJ_THREADS`, `WCOJ_SHARD_MIN_SIZE`,
/// `WCOJ_HEAVY_SPLIT`, and `wcoj-service`'s `WCOJ_QUEUE_DEPTH`).
#[must_use]
pub fn read_env_usize(key: &str) -> Option<usize> {
    let raw = std::env::var(key).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_malformed_env(key, &format!("value {raw:?} is not a non-negative integer"));
            None
        }
    }
}

/// Reads the `WCOJ_TRACE` trace-level knob (`off`/`0`, `summary`/`1`,
/// `verbose`/`2` — see [`TraceLevel::parse`]). Unset → `None`; malformed
/// → `None` **plus** the same one-time warning and
/// [`malformed_env_warnings`] entry as every other `WCOJ_*` knob.
/// `wcoj-service` applies the result to the global
/// [`trace`](wcoj_obs::trace) ring at construction.
#[must_use]
pub fn trace_level_from_env() -> Option<TraceLevel> {
    let raw = std::env::var("WCOJ_TRACE").ok()?;
    match TraceLevel::parse(&raw) {
        Some(level) => Some(level),
        None => {
            warn_malformed_env(
                "WCOJ_TRACE",
                &format!("value {raw:?} is not off/summary/verbose (or 0/1/2)"),
            );
            None
        }
    }
}

/// Splits the sorted root-candidate list into at most `max_shards`
/// contiguous inclusive ranges that jointly cover the **entire** value
/// domain (`[0, u64::MAX]`): shard `i` owns the `i`-th chunk of
/// candidates plus the gap up to the next chunk's first candidate.
///
/// Returns an empty plan when there is nothing to split (`≤ 1` shard
/// requested or too few candidates) — callers fall back to a single
/// unrestricted run.
#[must_use]
pub fn plan_shards(candidates: &[Value], max_shards: usize, min_size: usize) -> Vec<RootShard> {
    let min_size = min_size.max(1);
    let shards = max_shards.min(candidates.len() / min_size);
    if shards <= 1 {
        return Vec::new();
    }
    let chunk = candidates.len().div_ceil(shards);
    let mut out = Vec::with_capacity(shards);
    let mut lo = Value(u64::MIN);
    let mut start = 0usize;
    while start < candidates.len() {
        let end = (start + chunk).min(candidates.len());
        let hi = if end == candidates.len() {
            Value(u64::MAX)
        } else {
            // everything up to (but not including) the next chunk's first
            // candidate belongs to this shard
            Value(candidates[end].0 - 1)
        };
        out.push(RootShard::range(lo, hi));
        if end == candidates.len() {
            break;
        }
        lo = Value(hi.0 + 1);
        start = end;
    }
    out
}

/// Work-based shard planning: splits the sorted `(candidate, weight)` list
/// into contiguous inclusive ranges of roughly equal **total weight**
/// (each shard targets `⌈Σw / max_shards⌉`), jointly covering the entire
/// value domain. A *heavy* candidate — one whose weight alone reaches the
/// target — is isolated into a singleton shard so a hot key never drags
/// its neighbours onto the same worker (splitting *inside* one root value
/// is [`plan_weighted_shards_split`]'s job). `max_shards` sets the weight
/// target, not a hard cap: heavy-hitter isolation can emit a few more,
/// smaller, shards — extra entries for the pool to steal, never extra
/// parallelism.
///
/// The plan size is bounded even in the all-heavy degenerate case: a
/// candidate is heavy only when its weight reaches `⌈Σw / max_shards⌉`,
/// so at most `max_shards` singletons exist, each light group (other
/// than a tail flushed by a heavy neighbour) carries a full target of
/// weight, and the plan never exceeds `2 × max_shards + 1` entries — no
/// 1-task-per-candidate explosion, pinned by
/// `all_heavy_degenerate_plans_stay_bounded`.
///
/// Returns an empty plan when there is nothing to split (`≤ 1` shard
/// requested, or fewer than `2 × min_size` candidates).
#[must_use]
pub fn plan_weighted_shards(
    weights: &[(Value, u64)],
    max_shards: usize,
    min_size: usize,
) -> Vec<RootShard> {
    let min_size = min_size.max(1);
    let max_shards = max_shards.min(weights.len() / min_size);
    if max_shards <= 1 {
        return Vec::new();
    }
    let total = saturating_total(weights);
    let target = total.div_ceil(max_shards as u128).max(1);

    // Group boundaries: exclusive end index of each group of candidates.
    let mut bounds: Vec<usize> = Vec::new();
    let mut acc: u128 = 0;
    let mut open = false; // does an unclosed group precede index i?
    for (i, &(_, w)) in weights.iter().enumerate() {
        let w = u128::from(w);
        if w >= target {
            // Heavy hitter: close the open group, then isolate the key.
            if open {
                bounds.push(i);
            }
            bounds.push(i + 1);
            acc = 0;
            open = false;
        } else {
            acc = acc.saturating_add(w);
            open = true;
            if acc >= target {
                bounds.push(i + 1);
                acc = 0;
                open = false;
            }
        }
    }
    if open {
        bounds.push(weights.len());
    }
    if bounds.len() <= 1 {
        return Vec::new();
    }

    // Convert candidate groups into gap-free inclusive value ranges: each
    // shard also owns the gap up to the next group's first candidate, so
    // the plan covers [0, u64::MAX] no matter how loose the candidates.
    let mut out = Vec::with_capacity(bounds.len());
    let mut lo = Value(u64::MIN);
    for (g, &end) in bounds.iter().enumerate() {
        let hi = if g + 1 == bounds.len() {
            Value(u64::MAX)
        } else {
            Value(weights[end].0 .0 - 1)
        };
        out.push(RootShard::range(lo, hi));
        lo = Value(hi.0.wrapping_add(1));
    }
    out
}

/// Total estimated work of a weight list, accumulated in `u128` with
/// saturating adds so the per-shard target math is monotone even for
/// adversarial near-`u64::MAX` per-candidate weights (a wrapped total
/// would collapse the plan into one degenerate shard).
fn saturating_total(weights: &[(Value, u64)]) -> u128 {
    weights
        .iter()
        .fold(0u128, |acc, &(_, w)| acc.saturating_add(u128::from(w)))
}

/// One planned group of root candidates: the exclusive end index of its
/// candidate run, plus — for an intra-value split of a heavy candidate —
/// the anchor-chunk boundaries (first anchor candidate of every chunk
/// after the first).
struct GroupSpec {
    end: usize,
    anchor_bounds: Option<Vec<Value>>,
}

impl GroupSpec {
    fn tasks(&self) -> usize {
        self.anchor_bounds.as_ref().map_or(1, |b| b.len() + 1)
    }
}

/// [`plan_weighted_shards`] extended with **intra-value parallelism**: a
/// root value whose weight spans `s ≥ 2` per-shard work targets is broken
/// into `min(s, heavy_split, |anchor slice|)` *sub-shards* — [`RootShard`]s
/// sharing the value's root range whose [`AnchorRange`]s partition the
/// level-1 anchor domain at boundaries drawn from `anchor_slice(value)`
/// (the sorted anchor candidates under that root value,
/// [`PreparedQuery::anchor_candidates`]). The sub-shards jointly cover the
/// root range × the whole anchor domain `[0, u64::MAX]` exactly once, so
/// their union is bit-identical to the unsplit shard's output while a hot
/// key occupies up to `heavy_split` workers instead of one.
///
/// Unlike level-0 grouping, sub-split sizing deliberately ignores the
/// candidate-count floor: a root domain of a *single* candidate (the
/// extreme the planner exists for) can still fill the whole pool. The
/// task budget stays bounded in every degenerate case — splittable values
/// each span ≥ 2 targets so their sub-shards sum to ≤ `max_shards`, and
/// the level-0 groups obey [`plan_weighted_shards`]'s `2 × max_shards + 1`
/// bound — so the plan never exceeds `3 × max_shards + 1` entries.
///
/// `heavy_split ≤ 1` disables splitting and defers to
/// [`plan_weighted_shards`] exactly. Returns an empty plan when nothing
/// can be split at either level.
#[must_use]
pub fn plan_weighted_shards_split(
    weights: &[(Value, u64)],
    max_shards: usize,
    min_size: usize,
    heavy_split: usize,
    anchor_slice: impl Fn(Value) -> Vec<Value>,
) -> Vec<RootShard> {
    if heavy_split <= 1 {
        return plan_weighted_shards(weights, max_shards, min_size);
    }
    let min_size = min_size.max(1);
    if weights.is_empty() || max_shards <= 1 {
        return Vec::new();
    }
    let total = saturating_total(weights);
    // Sub-split target: what a full complement of shards would each carry.
    let target_split = total.div_ceil(max_shards as u128).max(1);
    // Level-0 grouping respects the same candidate floor as
    // `plan_weighted_shards`; a domain too small for level-0 splitting
    // becomes one group (sub-splits can still multiply it).
    let capped = max_shards.min(weights.len() / min_size);
    let target_group = if capped >= 2 {
        total.div_ceil(capped as u128).max(1)
    } else {
        u128::MAX
    };

    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut acc: u128 = 0;
    let mut open = false; // does an unclosed group precede index i?
    for (i, &(v, w)) in weights.iter().enumerate() {
        let w = u128::from(w);
        // How many work targets does this one candidate span?
        let split_ways = usize::try_from(w / target_split).unwrap_or(usize::MAX);
        let k = heavy_split.min(split_ways);
        if k >= 2 {
            // Splittable heavy hitter: close the open group, then carve
            // the candidate into ≤ k anchor sub-shards.
            if open {
                groups.push(GroupSpec {
                    end: i,
                    anchor_bounds: None,
                });
            }
            let slice = anchor_slice(v);
            let k = k.min(slice.len());
            let anchor_bounds = if k >= 2 {
                let chunk = slice.len().div_ceil(k);
                Some(slice.iter().copied().skip(chunk).step_by(chunk).collect())
            } else {
                None // no anchor domain to split on: plain singleton
            };
            groups.push(GroupSpec {
                end: i + 1,
                anchor_bounds,
            });
            acc = 0;
            open = false;
        } else if w >= target_group {
            // Heavy but not splittable: isolate it as before.
            if open {
                groups.push(GroupSpec {
                    end: i,
                    anchor_bounds: None,
                });
            }
            groups.push(GroupSpec {
                end: i + 1,
                anchor_bounds: None,
            });
            acc = 0;
            open = false;
        } else {
            acc = acc.saturating_add(w);
            open = true;
            if acc >= target_group {
                groups.push(GroupSpec {
                    end: i + 1,
                    anchor_bounds: None,
                });
                acc = 0;
                open = false;
            }
        }
    }
    if open {
        groups.push(GroupSpec {
            end: weights.len(),
            anchor_bounds: None,
        });
    }
    if groups.iter().map(GroupSpec::tasks).sum::<usize>() <= 1 {
        return Vec::new();
    }

    // Emit gap-free inclusive root ranges exactly like
    // `plan_weighted_shards` (each group owns the gap up to the next
    // group's first candidate); a sub-split group emits one shard per
    // anchor chunk, all sharing the group's root range, their anchor
    // ranges jointly covering [0, u64::MAX].
    let mut out = Vec::with_capacity(groups.iter().map(GroupSpec::tasks).sum());
    let mut lo = Value(u64::MIN);
    for (g, group) in groups.iter().enumerate() {
        let hi = if g + 1 == groups.len() {
            Value(u64::MAX)
        } else {
            Value(weights[group.end].0 .0 - 1)
        };
        match &group.anchor_bounds {
            None => out.push(RootShard::range(lo, hi)),
            Some(bounds) => {
                let mut alo = Value(u64::MIN);
                for &b in bounds {
                    out.push(RootShard {
                        lo,
                        hi,
                        anchor: Some(AnchorRange {
                            lo: alo,
                            // bounds are anchor candidates at index ≥ 1 of
                            // a sorted distinct slice, so b.0 ≥ 1
                            hi: Value(b.0 - 1),
                        }),
                    });
                    alo = b;
                }
                out.push(RootShard {
                    lo,
                    hi,
                    anchor: Some(AnchorRange {
                        lo: alo,
                        hi: Value(u64::MAX),
                    }),
                });
            }
        }
        lo = Value(hi.0.wrapping_add(1));
    }
    out
}

/// A planned decomposition of one query into schedulable root-range
/// shards — the unit both [`par_join`]'s scoped pool and the shared-pool
/// `wcoj-service` scheduler execute. Built by [`ShardPlan::plan`] from a
/// preparation; carries the candidate count so callers can distinguish
/// "domain too small to split" from "**no** root value can produce output"
/// (the zero-shard case: skip the engine entirely).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<RootShard>,
    root_candidates: usize,
}

impl ShardPlan {
    /// Plans shards for `prepared` under `cfg`'s strategy knobs
    /// (`shard_min_size`, `split`, `heavy_split_factor`; `threads` is the
    /// caller's business): `max_shards` ranges as the sizing target
    /// ([`ShardSplit::Work`] may exceed it when isolating or sub-splitting
    /// heavy hitters, bounded by `3 × max_shards + 1`), never splitting
    /// level-0 domains finer than `shard_min_size` candidates per shard.
    /// Intra-value sub-shards need an anchor level to split on, so they
    /// are only planned for total orders of ≥ 2 attributes.
    #[must_use]
    pub fn plan<S: SearchTree>(
        prepared: &PreparedQuery<S>,
        max_shards: usize,
        cfg: &ExecConfig,
    ) -> ShardPlan {
        let min_size = cfg.shard_min_size;
        let (shards, root_candidates) = match cfg.split {
            ShardSplit::Candidates => {
                let cands = prepared.root_candidates();
                (plan_shards(&cands, max_shards, min_size), cands.len())
            }
            ShardSplit::Work => {
                // Memoized on the preparation: repeat submissions of a
                // cached PreparedQuery skip the level-0 weight sweep.
                let weights = prepared.cached_root_weights();
                let shards = if cfg.heavy_split_factor >= 2 && prepared.total_order().len() >= 2 {
                    plan_weighted_shards_split(
                        weights,
                        max_shards,
                        min_size,
                        cfg.heavy_split_factor,
                        |v| prepared.anchor_candidates(v),
                    )
                } else {
                    plan_weighted_shards(weights, max_shards, min_size)
                };
                (shards, weights.len())
            }
        };
        // Heavy-split decisions are worth tracing: they are the planner's
        // answer to skew, and sub-shard counts explain why a plan exceeds
        // its sizing target. Payload is only computed when tracing is on.
        let ring = wcoj_obs::trace();
        if ring.enabled(TraceLevel::Summary) {
            let sub_shards = shards.iter().filter(|s| s.anchor.is_some()).count();
            if sub_shards > 0 {
                // Sub-shards of one root value are contiguous and share
                // their root range; count the runs to count the values.
                let values = shards
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| s.anchor.is_some() && (*i == 0 || shards[i - 1].lo != s.lo))
                    .count();
                ring.record(
                    TraceLevel::Summary,
                    TraceEvent::HeavySplit {
                        values: values as u32,
                        sub_shards: sub_shards as u32,
                    },
                );
            }
        }
        ShardPlan {
            shards,
            root_candidates,
        }
    }

    /// The planned ranges (empty for degenerate single-run plans).
    #[must_use]
    pub fn shards(&self) -> &[RootShard] {
        &self.shards
    }

    /// Number of planned shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` iff the plan has no shards (degenerate: run unrestricted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Number of root-candidate values the planner saw.
    #[must_use]
    pub fn root_candidates(&self) -> usize {
        self.root_candidates
    }

    /// `true` iff no root value can produce output for a non-nullary
    /// query: the candidate intersection is empty, so the join is empty
    /// and needs **zero** shard tasks (nullary queries have no root
    /// attribute and are excluded — they still need their single run).
    #[must_use]
    pub fn root_domain_is_empty<S: SearchTree>(&self, prepared: &PreparedQuery<S>) -> bool {
        self.root_candidates == 0 && !prepared.total_order().is_empty()
    }

    /// The schedulable task list: one entry per shard, or a single
    /// unrestricted task (`None`) when the plan is degenerate. Callers
    /// must check [`Self::root_domain_is_empty`] first — a zero-output
    /// query needs no tasks at all.
    #[must_use]
    pub fn tasks(&self) -> Vec<Option<RootShard>> {
        if self.shards.len() <= 1 {
            vec![None]
        } else {
            self.shards.iter().copied().map(Some).collect()
        }
    }
}

/// Evaluates the natural join of `relations` on a worker pool, with the
/// LP-optimal fractional cover. Output is bit-identical to the sequential
/// [`join_nprr`](wcoj_core::nprr::join_nprr).
///
/// # Errors
/// Same as [`wcoj_core::join_with`].
pub fn par_join(relations: &[Relation], cfg: &ExecConfig) -> Result<JoinOutput, QueryError> {
    par_join_with_cover(relations, None, cfg)
}

/// Like [`par_join`] with an explicit fractional cover (validated; one
/// weight per relation in input order).
///
/// # Errors
/// Same as [`wcoj_core::join_with`]; additionally
/// [`QueryError::BadCover`] for invalid covers.
pub fn par_join_with_cover(
    relations: &[Relation],
    cover: Option<&[f64]>,
    cfg: &ExecConfig,
) -> Result<JoinOutput, QueryError> {
    let prepared = PreparedQuery::<TrieIndex>::new_indexed(relations)?;
    par_join_prepared(&prepared, cover, cfg)
}

/// Runs the partition-parallel join over an existing preparation,
/// sharing its indexes across all workers (paper Remark 5.2: pay the
/// indexing once). Generic over the [`SearchTree`] backend.
///
/// # Errors
/// [`QueryError::BadCover`] for invalid covers; LP errors when solving
/// for the optimum.
pub fn par_join_prepared<S>(
    prepared: &PreparedQuery<S>,
    cover: Option<&[f64]>,
    cfg: &ExecConfig,
) -> Result<JoinOutput, QueryError>
where
    S: SearchTree + Sync,
{
    if prepared.input_is_empty() {
        return Ok(JoinOutput {
            relation: Relation::empty(prepared.query().output_schema()),
            stats: JoinStats {
                algorithm_used: "nprr-parallel",
                ..JoinStats::default()
            },
        });
    }
    let (x, log2_bound) = prepared.resolve_cover(cover)?;
    Ok(par_run(prepared, &x, log2_bound, cfg))
}

/// Shards planned per worker: oversplitting keeps a pool busy when value
/// ranges carry skewed amounts of work even after work-based sizing.
pub const OVERSPLIT: usize = 4;

/// The pool run: plan shards, fan out, merge. Infallible once the cover
/// is resolved.
fn par_run<S>(
    prepared: &PreparedQuery<S>,
    x: &[f64],
    log2_bound: f64,
    cfg: &ExecConfig,
) -> JoinOutput
where
    S: SearchTree + Sync,
{
    let mut stats = JoinStats {
        algorithm_used: "nprr-parallel",
        log2_agm_bound: log2_bound,
        cover: x.to_vec(),
        ..JoinStats::default()
    };

    let shards = if cfg.threads > 1 {
        let plan = ShardPlan::plan(prepared, cfg.threads * OVERSPLIT, cfg);
        if plan.root_domain_is_empty(prepared) {
            // Zero-shard plan: no root value survives the level-0
            // intersection, so the join is empty — return without running
            // the engine or spawning a single worker.
            return prepared
                .assemble(Vec::new(), stats)
                .expect("empty rows assemble");
        }
        plan.shards
    } else {
        Vec::new()
    };

    if shards.len() <= 1 {
        // Degenerate plan: run unrestricted on this thread.
        let (rows, run_stats) = prepared.run_shard(x, log2_bound, None);
        stats.absorb(&run_stats);
        return prepared
            .assemble(rows, stats)
            .expect("total-order rows assemble");
    }

    // One worker result: (shard index, raw rows, run statistics).
    type ShardResult = (usize, Vec<Vec<Value>>, JoinStats);
    let n_workers = cfg.threads.min(shards.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<ShardResult>> = Mutex::new(Vec::with_capacity(shards.len()));

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&shard) = shards.get(i) else { break };
                let (rows, run_stats) = prepared.run_shard(x, log2_bound, Some(shard));
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((i, rows, run_stats));
            });
        }
    });

    // Merge deterministically in root-value (= shard-index) order.
    let mut per_shard = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    per_shard.sort_unstable_by_key(|(i, _, _)| *i);
    debug_assert_eq!(per_shard.len(), shards.len(), "every shard ran once");
    let mut rows = Vec::with_capacity(per_shard.iter().map(|(_, r, _)| r.len()).sum());
    for (_, shard_rows, run_stats) in per_shard {
        rows.extend(shard_rows);
        stats.absorb(&run_stats);
    }
    prepared
        .assemble(rows, stats)
        .expect("total-order rows assemble")
}

/// The [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
/// executor registered by [`install`]: builds a preparation for the query
/// and runs with [`ExecConfig::from_env`].
fn hook_executor(q: &JoinQuery, x: &[f64], log2_bound: f64) -> Result<JoinOutput, QueryError> {
    let prepared = PreparedQuery::<TrieIndex>::from_query(q.clone())?;
    Ok(par_run(&prepared, x, log2_bound, &ExecConfig::from_env()))
}

/// Registers this engine as the process-wide executor for
/// [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel).
/// Idempotent and cheap — call freely before `join_with`.
pub fn install() {
    wcoj_core::register_parallel_executor(hook_executor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_core::{join_with, Algorithm};
    use wcoj_storage::{HashTrieIndex, Schema};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn assert_matches_sequential(rels: &[Relation], cfg: &ExecConfig, ctx: &str) {
        let seq = join_with(rels, Algorithm::Nprr, None).unwrap();
        let par = par_join(rels, cfg).unwrap();
        assert_eq!(par.relation, seq.relation, "{ctx}");
        assert_eq!(par.stats.algorithm_used, "nprr-parallel", "{ctx}");
    }

    #[test]
    fn plan_covers_domain_and_respects_floor() {
        let cands: Vec<Value> = (0..40u64).map(|i| Value(i * 3)).collect();
        let plan = plan_shards(&cands, 4, 1);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].lo, Value(0));
        assert_eq!(plan.last().unwrap().hi, Value(u64::MAX));
        for w in plan.windows(2) {
            assert_eq!(w[1].lo.0, w[0].hi.0 + 1, "gap-free");
        }
        // floor: 40 candidates at min 30 per shard → no useful split
        assert!(plan_shards(&cands, 4, 30).is_empty());
        assert!(plan_shards(&[], 4, 1).is_empty());
        assert!(plan_shards(&cands, 1, 1).is_empty());
    }

    #[test]
    fn weighted_plan_balances_work_and_isolates_heavy_keys() {
        // 9 unit-weight candidates plus one hot key carrying most of the
        // total work.
        let mut weights: Vec<(Value, u64)> = (0..10u64).map(|i| (Value(i * 2), 1)).collect();
        weights[4].1 = 100; // Value(8) is the heavy hitter
        let plan = plan_weighted_shards(&weights, 4, 1);
        assert!(plan.len() >= 3, "hot key plus its flanks: {plan:?}");
        // covering and gap-free
        assert_eq!(plan[0].lo, Value(0));
        assert_eq!(plan.last().unwrap().hi, Value(u64::MAX));
        for w in plan.windows(2) {
            assert_eq!(w[1].lo.0, w[0].hi.0 + 1, "gap-free");
        }
        // the heavy candidate sits alone in its shard
        let hot = plan
            .iter()
            .find(|s| s.contains(Value(8)))
            .expect("some shard owns the hot key");
        let owned: Vec<Value> = weights
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| hot.contains(v))
            .collect();
        assert_eq!(owned, vec![Value(8)], "hot key isolated: {plan:?}");

        // uniform weights ≈ count-based chunks
        let uniform: Vec<(Value, u64)> = (0..40u64).map(|i| (Value(i), 1)).collect();
        let plan = plan_weighted_shards(&uniform, 4, 1);
        assert_eq!(plan.len(), 4);

        // degenerate inputs
        assert!(plan_weighted_shards(&[], 4, 1).is_empty());
        assert!(plan_weighted_shards(&uniform, 1, 1).is_empty());
        assert!(plan_weighted_shards(&uniform, 4, 30).is_empty());
    }

    /// Every plan is a gap-free cover of root × anchor space: root ranges
    /// tile `[0, u64::MAX]`, and within a run of sub-shards sharing a root
    /// range the anchor ranges tile `[0, u64::MAX]` too.
    fn assert_covers_domain(plan: &[RootShard], ctx: &str) {
        assert!(!plan.is_empty(), "{ctx}");
        assert_eq!(plan[0].lo, Value(0), "{ctx}");
        assert_eq!(plan.last().unwrap().hi, Value(u64::MAX), "{ctx}");
        let mut i = 0;
        while i < plan.len() {
            let s = plan[i];
            let mut j = i + 1;
            if s.anchor.is_some() {
                let mut alo = 0u64;
                while j < plan.len() && plan[j].lo == s.lo {
                    j += 1;
                }
                assert!(j - i >= 2, "{ctx}: a sub-shard run has ≥ 2 entries");
                for sub in &plan[i..j] {
                    assert_eq!(sub.hi, s.hi, "{ctx}: run shares the root range");
                    let a = sub.anchor.expect("run fully anchored");
                    assert_eq!(a.lo.0, alo, "{ctx}: anchor gap-free");
                    assert!(a.lo <= a.hi, "{ctx}: anchor range non-empty");
                    alo = a.hi.0.wrapping_add(1);
                }
                assert_eq!(
                    plan[j - 1].anchor.unwrap().hi,
                    Value(u64::MAX),
                    "{ctx}: anchor cover complete"
                );
            }
            if j < plan.len() {
                assert_eq!(
                    plan[j].lo.0,
                    s.hi.0.wrapping_add(1),
                    "{ctx}: root ranges gap-free"
                );
            }
            i = j;
        }
    }

    #[test]
    fn single_hot_key_splits_into_anchor_sub_shards() {
        // A root domain of ONE candidate carrying all the work: the
        // pre-intra-value planner had no parallelism to offer here at all.
        let weights = vec![(Value(7), 1_000_000u64)];
        let anchors: Vec<Value> = (0..100u64).map(|a| Value(a * 5)).collect();
        let plan = plan_weighted_shards_split(&weights, 16, 16, 8, |v| {
            assert_eq!(v, Value(7));
            anchors.clone()
        });
        assert_eq!(plan.len(), 8, "hot key split heavy_split ways: {plan:?}");
        assert_covers_domain(&plan, "single hot key");
        for sub in &plan {
            assert_eq!((sub.lo, sub.hi), (Value(0), Value(u64::MAX)));
            assert!(sub.anchor.is_some());
        }
        // every anchor candidate lands in exactly one sub-shard
        for &a in &anchors {
            assert_eq!(
                plan.iter().filter(|s| s.anchor_contains(a)).count(),
                1,
                "anchor {a:?} covered exactly once"
            );
        }
        // factor ≤ 1 disables intra-value splitting entirely
        for factor in [0, 1] {
            let plan = plan_weighted_shards_split(&weights, 16, 16, factor, |_| anchors.clone());
            assert!(plan.is_empty(), "factor {factor} defers to level-0 plan");
        }
        // a hot key with a single anchor candidate cannot be split
        let plan = plan_weighted_shards_split(&weights, 16, 16, 8, |_| vec![Value(3)]);
        assert!(plan.is_empty(), "one anchor candidate: nothing to split");
    }

    #[test]
    fn hot_key_among_light_neighbours_gets_sub_shards() {
        // 30 unit-weight candidates plus one dominating hot key.
        let mut weights: Vec<(Value, u64)> = (0..31u64).map(|i| (Value(i * 2), 1)).collect();
        weights[15].1 = 10_000; // Value(30) carries ~99.7% of the work
        let plan = plan_weighted_shards_split(&weights, 16, 1, 8, |v| {
            assert_eq!(v, Value(30), "only the hot key's slice is fetched");
            (0..64u64).map(Value).collect()
        });
        assert_covers_domain(&plan, "hot key among light");
        let subs: Vec<&RootShard> = plan.iter().filter(|s| s.anchor.is_some()).collect();
        assert_eq!(subs.len(), 8, "{plan:?}");
        for sub in &subs {
            assert!(sub.contains(Value(30)));
        }
        // light neighbours are still grouped, not exploded
        assert!(plan.len() <= 3 * 16 + 1, "{plan:?}");
    }

    #[test]
    fn all_heavy_degenerate_plans_stay_bounded() {
        // Adversarial weight shapes — all-heavy uniform (every candidate
        // reaches the per-shard target, the 1-singleton-per-candidate
        // shape), alternating hot/cold, and tiny totals that clamp the
        // target to 1 — must never explode past the documented budgets:
        // 2·max_shards+1 for the level-0 planner, 3·max_shards+1 with
        // intra-value splitting.
        let anchors: Vec<Value> = (0..256u64).map(Value).collect();
        for n in [2usize, 8, 40, 64, 300] {
            let uniform: Vec<(Value, u64)> = (0..n).map(|i| (Value(i as u64 * 3), 1_000)).collect();
            let alternating: Vec<(Value, u64)> = (0..n)
                .map(|i| (Value(i as u64 * 3), if i % 2 == 0 { 1_000_000 } else { 1 }))
                .collect();
            let ones: Vec<(Value, u64)> = (0..n).map(|i| (Value(i as u64 * 3), 1)).collect();
            for max_shards in [2usize, 4, 16, 256] {
                for (shape, weights) in [
                    ("uniform", &uniform),
                    ("alt", &alternating),
                    ("ones", &ones),
                ] {
                    let ctx = format!("{shape} n={n} max={max_shards}");
                    let plan = plan_weighted_shards(weights, max_shards, 1);
                    assert!(
                        plan.len() <= 2 * max_shards + 1,
                        "{ctx}: level-0 budget ({})",
                        plan.len()
                    );
                    if !plan.is_empty() {
                        assert_covers_domain(&plan, &ctx);
                    }
                    for factor in [2usize, 8, 64, usize::MAX] {
                        let plan =
                            plan_weighted_shards_split(weights, max_shards, 1, factor, |_| {
                                anchors.clone()
                            });
                        assert!(
                            plan.len() <= 3 * max_shards + 1,
                            "{ctx} factor={factor}: split budget ({})",
                            plan.len()
                        );
                        if !plan.is_empty() {
                            assert_covers_domain(&plan, &format!("{ctx} factor={factor}"));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn both_split_strategies_match_sequential_on_skew() {
        // Zipf-skewed triangle: the work-based plan differs materially
        // from the count-based one, output must not.
        let rels = [
            wcoj_datagen::zipf_relation(77, &[0, 1], 200, 24, 1.3),
            wcoj_datagen::zipf_relation(78, &[1, 2], 200, 24, 1.3),
            wcoj_datagen::zipf_relation(79, &[0, 2], 200, 24, 1.3),
        ];
        for split in [ShardSplit::Candidates, ShardSplit::Work] {
            let cfg = ExecConfig {
                threads: 4,
                shard_min_size: 1,
                split,
                ..ExecConfig::default()
            };
            assert_matches_sequential(&rels, &cfg, &format!("skewed triangle {split:?}"));
        }
    }

    #[test]
    fn hot_key_workload_end_to_end() {
        // One root value carrying ≥ 90% of the estimated work: the plan
        // must be multi-task (anchor sub-shards), and the parallel output
        // bit-identical to the sequential engine.
        let rels = wcoj_datagen::hot_key_triangle(3, 96, 6);
        let prepared = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let weights = prepared.root_candidate_weights();
        let total: u64 = weights.iter().map(|&(_, w)| w).sum();
        let hot = weights.iter().map(|&(_, w)| w).max().unwrap();
        assert!(
            hot as f64 / total as f64 >= 0.9,
            "hot key dominates: {hot}/{total}"
        );
        let cfg = ExecConfig {
            threads: 4,
            shard_min_size: 1,
            split: ShardSplit::Work,
            ..ExecConfig::default()
        };
        let plan = ShardPlan::plan(&prepared, cfg.threads * OVERSPLIT, &cfg);
        let subs = plan.shards().iter().filter(|s| s.anchor.is_some()).count();
        assert!(
            subs >= 2,
            "hot key split into ≥ 2 anchor sub-shards: {:?}",
            plan.shards()
        );
        assert!(plan.len() > 1, "multi-task plan");
        assert_matches_sequential(&rels, &cfg, "hot-key triangle");
        // disabling intra-value splitting also stays correct (isolation
        // only, PR 2 behaviour)
        let cfg_off = ExecConfig {
            heavy_split_factor: 0,
            ..cfg.clone()
        };
        let plan_off = ShardPlan::plan(&prepared, cfg_off.threads * OVERSPLIT, &cfg_off);
        assert!(plan_off.shards().iter().all(|s| s.anchor.is_none()));
        assert_matches_sequential(&rels, &cfg_off, "hot-key triangle, split off");
    }

    #[test]
    fn empty_root_domain_returns_zero_shard_plan() {
        // Triangle whose root attribute (1) has a non-trivial domain in
        // each relation but an empty intersection: π₁(R) = {1,2,3},
        // π₁(S) = {7,8,9} → no candidate survives, the join is empty, and
        // the parallel path returns without running the engine.
        let r = rel(&[0, 1], &[&[10, 1], &[10, 2], &[11, 3]]);
        let s = rel(&[1, 2], &[&[7, 20], &[8, 20], &[9, 21]]);
        let t = rel(&[0, 2], &[&[10, 20], &[11, 21]]);
        let rels = [r, s, t];
        let prepared = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        for split in [ShardSplit::Candidates, ShardSplit::Work] {
            let cfg = ExecConfig {
                threads: 4,
                shard_min_size: 1,
                split,
                ..ExecConfig::default()
            };
            let plan = ShardPlan::plan(&prepared, 16, &cfg);
            assert_eq!(plan.root_candidates(), 0, "{split:?}");
            assert!(plan.root_domain_is_empty(&prepared), "{split:?}");
            let out = par_join(&rels, &cfg).unwrap();
            assert!(out.relation.is_empty(), "{split:?}");
            assert_eq!(out.relation.arity(), 3, "{split:?}");
            assert_eq!(out.stats.shards, 0, "no shard ever ran: {split:?}");
            assert_eq!(out.stats.case_a + out.stats.case_b, 0, "{split:?}");
            // matches the sequential engine bit for bit
            assert_matches_sequential(&rels, &cfg, &format!("empty domain {split:?}"));
        }
        // a populated query is NOT a zero-shard plan
        let populated = PreparedQuery::<TrieIndex>::new_indexed(&[
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ])
        .unwrap();
        let plan = ShardPlan::plan(
            &populated,
            16,
            &ExecConfig {
                shard_min_size: 1,
                split: ShardSplit::Work,
                ..ExecConfig::default()
            },
        );
        assert!(!plan.root_domain_is_empty(&populated));
        assert_eq!(plan.tasks().len(), plan.len().max(1));
    }

    #[test]
    fn triangle_matches_sequential_across_thread_counts() {
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], 120, 12),
            wcoj_datagen::random_relation(2, &[1, 2], 120, 12),
            wcoj_datagen::random_relation(3, &[0, 2], 120, 12),
        ];
        for threads in [1, 2, 4, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            assert_matches_sequential(&rels, &cfg, &format!("triangle t={threads}"));
        }
    }

    #[test]
    fn hard_triangle_and_paper_examples() {
        let cfg = ExecConfig {
            threads: 4,
            shard_min_size: 1,
            ..ExecConfig::default()
        };
        // Example 2.2: the adversarial empty-output triangle.
        assert_matches_sequential(&wcoj_datagen::example_2_2(64), &cfg, "example 2.2");
        // AGM-tight grid triangle.
        assert_matches_sequential(&wcoj_datagen::agm_tight_triangle(6), &cfg, "agm tight");
        // LW instance (n=4).
        assert_matches_sequential(&wcoj_datagen::random_lw(5, 4, 120, 8), &cfg, "lw4");
        // 5-cycle.
        assert_matches_sequential(&wcoj_datagen::cycle_instance(9, 5, 60, 10), &cfg, "5-cycle");
        // §5.2 worked example (5 relations, 6 attributes).
        assert_matches_sequential(&wcoj_datagen::worked_example(7, 80, 6), &cfg, "figure 2");
    }

    #[test]
    fn degenerate_queries() {
        let cfg = ExecConfig {
            threads: 4,
            shard_min_size: 1,
            ..ExecConfig::default()
        };
        // single relation
        assert_matches_sequential(&[rel(&[0, 1], &[&[1, 2], &[3, 4]])], &cfg, "single");
        // empty input relation short-circuits
        let out = par_join(
            &[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ],
            &cfg,
        )
        .unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        // nullary: join of non-empty nullary relations is "true"
        let out = par_join(&[Relation::nullary_true()], &cfg).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.arity(), 0);
    }

    #[test]
    fn explicit_cover_and_bad_cover() {
        let rels = [
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ];
        let cfg = ExecConfig::with_threads(2);
        let out = par_join_with_cover(&rels, Some(&[1.0, 1.0, 1.0]), &cfg).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert!(par_join_with_cover(&rels, Some(&[0.1, 0.1, 0.1]), &cfg).is_err());
    }

    #[test]
    fn prepared_reuse_and_hash_backend() {
        let rels = [
            wcoj_datagen::random_relation(20, &[0, 1, 2], 80, 6),
            wcoj_datagen::random_relation(21, &[2, 3], 80, 6),
            wcoj_datagen::random_relation(22, &[0, 3], 80, 6),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        for threads in [2, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            let a = par_join_prepared(&sorted, None, &cfg).unwrap();
            let b = par_join_prepared(&hashed, None, &cfg).unwrap();
            assert_eq!(a.relation, seq.relation, "sorted t={threads}");
            assert_eq!(b.relation, seq.relation, "hashed t={threads}");
        }
        // reuse is cheap: second evaluation over the same preparation
        let again = par_join_prepared(&sorted, None, &ExecConfig::with_threads(4)).unwrap();
        assert_eq!(again.relation, seq.relation);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let rels = [
            wcoj_datagen::random_relation(30, &[0, 1], 200, 16),
            wcoj_datagen::random_relation(31, &[1, 2], 200, 16),
            wcoj_datagen::random_relation(32, &[0, 2], 200, 16),
        ];
        let out = par_join(
            &rels,
            &ExecConfig {
                threads: 4,
                shard_min_size: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(out.stats.shards > 1, "plan actually split");
        assert!(out.stats.case_a + out.stats.case_b > 0);
        assert!(out.stats.log2_agm_bound > 0.0);
    }

    #[test]
    fn near_max_weights_never_collapse_the_plan() {
        // Adversarial weights close to u64::MAX: with wrapping arithmetic
        // the total (and the per-shard target derived from it) would wrap
        // to a tiny value, every candidate would look "heavy ≫ target",
        // and degenerate shapes could fall out. Saturating accumulation
        // keeps the plan a bounded, covering, multi-shard split.
        let weights: Vec<(Value, u64)> = (0..8u64).map(|i| (Value(i * 10), u64::MAX - i)).collect();
        for max_shards in [2usize, 4, 16] {
            let plan = plan_weighted_shards(&weights, max_shards, 1);
            assert!(
                plan.len() >= 2,
                "max={max_shards}: near-MAX weights still split ({plan:?})"
            );
            assert!(plan.len() <= 2 * max_shards + 1, "max={max_shards}");
            assert_covers_domain(&plan, &format!("near-max max={max_shards}"));
            let anchors: Vec<Value> = (0..64u64).map(Value).collect();
            let split = plan_weighted_shards_split(&weights, max_shards, 1, 8, |_| anchors.clone());
            assert!(split.len() >= 2, "max={max_shards}: split planner too");
            assert!(split.len() <= 3 * max_shards + 1, "max={max_shards}");
            assert_covers_domain(&split, &format!("near-max split max={max_shards}"));
        }
        // A single near-MAX candidate among unit weights is isolated, not
        // wrapped into its neighbours.
        let mut mixed: Vec<(Value, u64)> = (0..10u64).map(|i| (Value(i * 2), 1)).collect();
        mixed[5].1 = u64::MAX;
        let plan = plan_weighted_shards(&mixed, 4, 1);
        let hot = plan
            .iter()
            .find(|s| s.contains(Value(10)))
            .expect("some shard owns the near-MAX key");
        let owned: Vec<Value> = mixed
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| hot.contains(v))
            .collect();
        assert_eq!(owned, vec![Value(10)], "near-MAX key isolated: {plan:?}");
    }

    /// Serialises the tests that mutate or read `WCOJ_*` process env
    /// vars: concurrent `setenv`/`getenv` is undefined behaviour at the
    /// libc level, and an unsynchronised reader would also observe the
    /// mutating test's temporary values.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn malformed_env_knobs_warn_and_fall_back() {
        // A typo like WCOJ_HEAVY_SPLIT=eight must not silently revert to
        // the defaults: the knob falls back AND the key is registered in
        // the one-time warning list. Valid values still apply.
        let _env = ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let defaults = ExecConfig::default();
        std::env::set_var("WCOJ_THREADS", "many");
        std::env::set_var("WCOJ_SHARD_MIN_SIZE", "-3");
        std::env::set_var("WCOJ_HEAVY_SPLIT", "eight");
        std::env::set_var("WCOJ_SHARD_SPLIT", "fairly");
        let cfg = ExecConfig::from_env();
        let cfg_again = ExecConfig::from_env(); // second read: no new warnings
        std::env::remove_var("WCOJ_THREADS");
        std::env::remove_var("WCOJ_SHARD_MIN_SIZE");
        std::env::remove_var("WCOJ_HEAVY_SPLIT");
        std::env::remove_var("WCOJ_SHARD_SPLIT");
        assert_eq!(cfg, defaults, "every malformed knob fell back");
        assert_eq!(cfg_again, defaults);
        let warned = malformed_env_warnings();
        for key in [
            "WCOJ_THREADS",
            "WCOJ_SHARD_MIN_SIZE",
            "WCOJ_HEAVY_SPLIT",
            "WCOJ_SHARD_SPLIT",
        ] {
            assert_eq!(
                warned.iter().filter(|k| k.as_str() == key).count(),
                1,
                "{key} warned exactly once (once per key per process): {warned:?}"
            );
        }
        // and a well-formed override still applies
        std::env::set_var("WCOJ_HEAVY_SPLIT", "5");
        let cfg = ExecConfig::from_env();
        std::env::remove_var("WCOJ_HEAVY_SPLIT");
        assert_eq!(cfg.heavy_split_factor, 5);
    }

    #[test]
    fn trace_env_knob_parses_and_warns() {
        let _env = ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::remove_var("WCOJ_TRACE");
        assert_eq!(trace_level_from_env(), None, "unset → None");
        std::env::set_var("WCOJ_TRACE", "summary");
        assert_eq!(trace_level_from_env(), Some(TraceLevel::Summary));
        std::env::set_var("WCOJ_TRACE", "2");
        assert_eq!(trace_level_from_env(), Some(TraceLevel::Verbose));
        // malformed: falls back AND lands in the warn-once registry, like
        // every other WCOJ_* knob
        std::env::set_var("WCOJ_TRACE", "loud");
        assert_eq!(trace_level_from_env(), None);
        std::env::remove_var("WCOJ_TRACE");
        assert_eq!(
            malformed_env_warnings()
                .iter()
                .filter(|k| k.as_str() == "WCOJ_TRACE")
                .count(),
            1,
            "fallback is signalled, not silent"
        );
    }

    #[test]
    fn heavy_split_planning_is_traced() {
        // hot_key_triangle concentrates the root domain on one value, so a
        // work-based plan with splitting enabled must sub-split it — and,
        // with tracing at summary, record that decision. The global ring
        // is shared across tests; filter for our own event shape instead
        // of expecting exclusive ownership.
        let rels = wcoj_datagen::hot_key_triangle(23, 96, 2);
        let prepared = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let cfg = ExecConfig {
            shard_min_size: 1,
            heavy_split_factor: 4,
            ..ExecConfig::default()
        };
        let ring = wcoj_obs::trace();
        let level_before = ring.level();
        ring.set_level(TraceLevel::Summary);
        let plan = ShardPlan::plan(&prepared, 8, &cfg);
        let events = ring.drain();
        ring.set_level(level_before);
        let planned_subs = plan.shards().iter().filter(|s| s.anchor.is_some()).count();
        assert!(planned_subs >= 2, "hot key sub-split: {plan:?}");
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::HeavySplit { values, sub_shards }
                    if *values >= 1 && *sub_shards as usize == planned_subs
            )),
            "heavy-split decision traced: {events:?}"
        );
        // with tracing off, planning records nothing
        let before = ring.len();
        let _ = ShardPlan::plan(&prepared, 8, &cfg);
        assert_eq!(ring.len(), before, "Off level records nothing");
    }

    #[test]
    fn install_enables_algorithm_variant() {
        // The dispatch hook reads WCOJ_* env vars (ExecConfig::from_env):
        // serialise against the env-mutating test above.
        let _env = ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install();
        install(); // idempotent
        let rels = [
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ];
        let out = join_with(&rels, Algorithm::NprrParallel, None).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.stats.algorithm_used, "nprr-parallel");
    }
}
