//! # wcoj-exec — partition-parallel worst-case-optimal join execution
//!
//! The NPRR `Recursive-Join` (paper §5.2, Procedure 5) is embarrassingly
//! parallel at the root of the total order. The paper's step 2a observes
//! that for a tuple prefix `t`, the trie subtree under the branch for `t`
//! **is** the search tree of the section `Rₑ[t]`; in particular, the
//! sub-computations of `Recursive-Join` for two different values `a ≠ b`
//! of the *first* attribute in the total order touch disjoint subtrees of
//! every index and produce disjoint sets of output tuples (every output
//! tuple binds the root attribute exactly once). Sub-joins for disjoint
//! value ranges of the root attribute are therefore fully independent: no
//! shared mutable state, no coordination, and a deterministic merge by
//! simple concatenation in root-value order.
//!
//! This crate turns that observation into an execution engine:
//!
//! 1. **Shard planning** — walk level 0 of the prepared
//!    [`SearchTree`] indexes ([`PreparedQuery::root_candidates`]: the
//!    sorted intersection of root-level values over all relations
//!    containing the root attribute) and split the candidate list into
//!    contiguous ranges. The ranges jointly cover the whole value domain,
//!    so correctness never depends on the candidate computation being
//!    tight.
//! 2. **Parallel run** — a fixed-size pool of scoped worker threads pulls
//!    shards off an atomic cursor (cheap work stealing: shards are
//!    oversplit ~4× relative to the thread count so a skewed shard cannot
//!    serialise the run) and evaluates each with the sequential engine
//!    restricted to the shard's root range ([`PreparedQuery::run_shard`]).
//!    All workers share the same prepared indexes and the same fractional
//!    cover, so every per-tuple size check (Procedure 5, line 21) sees
//!    exactly the counts the sequential run would see.
//! 3. **Deterministic merge** — per-shard row sets are concatenated in
//!    root-value (= shard) order and assembled through the same
//!    sort/dedup/reorder path as the sequential engine, so the output
//!    relation is bit-identical to `join_nprr`'s. Per-worker [`JoinStats`]
//!    are folded with [`JoinStats::absorb`].
//!
//! Entry points: [`par_join`] / [`par_join_with_cover`] for one-shot
//! queries, [`par_join_prepared`] to reuse indexes across runs, and
//! [`install`] to register the engine as `wcoj-core`'s
//! [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
//! executor (the `wcoj` facade and `wcoj-query` call it automatically).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wcoj_core::nprr::{PreparedQuery, RootShard};
use wcoj_core::{JoinOutput, JoinQuery, JoinStats, QueryError};
use wcoj_storage::{Relation, SearchTree, TrieIndex, Value};

/// Knobs of the parallel executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads. `1` runs the sequential engine in-place.
    pub threads: usize,
    /// Minimum number of root-attribute candidate values per shard; the
    /// planner never splits finer than this (oversplitting tiny domains
    /// only buys scheduling overhead).
    pub shard_min_size: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            shard_min_size: 16,
        }
    }
}

impl ExecConfig {
    /// A config with `threads` workers and the default shard floor.
    #[must_use]
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// Default config overridden by the `WCOJ_THREADS` and
    /// `WCOJ_SHARD_MIN_SIZE` environment variables when set — how the
    /// [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
    /// dispatch path (which carries no config) is tuned.
    #[must_use]
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Some(t) = read_env_usize("WCOJ_THREADS") {
            cfg.threads = t.max(1);
        }
        if let Some(m) = read_env_usize("WCOJ_SHARD_MIN_SIZE") {
            cfg.shard_min_size = m.max(1);
        }
        cfg
    }
}

fn read_env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Splits the sorted root-candidate list into at most `max_shards`
/// contiguous inclusive ranges that jointly cover the **entire** value
/// domain (`[0, u64::MAX]`): shard `i` owns the `i`-th chunk of
/// candidates plus the gap up to the next chunk's first candidate.
///
/// Returns an empty plan when there is nothing to split (`≤ 1` shard
/// requested or too few candidates) — callers fall back to a single
/// unrestricted run.
#[must_use]
pub fn plan_shards(candidates: &[Value], max_shards: usize, min_size: usize) -> Vec<RootShard> {
    let min_size = min_size.max(1);
    let shards = max_shards.min(candidates.len() / min_size);
    if shards <= 1 {
        return Vec::new();
    }
    let chunk = candidates.len().div_ceil(shards);
    let mut out = Vec::with_capacity(shards);
    let mut lo = Value(u64::MIN);
    let mut start = 0usize;
    while start < candidates.len() {
        let end = (start + chunk).min(candidates.len());
        let hi = if end == candidates.len() {
            Value(u64::MAX)
        } else {
            // everything up to (but not including) the next chunk's first
            // candidate belongs to this shard
            Value(candidates[end].0 - 1)
        };
        out.push(RootShard { lo, hi });
        if end == candidates.len() {
            break;
        }
        lo = Value(hi.0 + 1);
        start = end;
    }
    out
}

/// Evaluates the natural join of `relations` on a worker pool, with the
/// LP-optimal fractional cover. Output is bit-identical to the sequential
/// [`join_nprr`](wcoj_core::nprr::join_nprr).
///
/// # Errors
/// Same as [`wcoj_core::join_with`].
pub fn par_join(relations: &[Relation], cfg: &ExecConfig) -> Result<JoinOutput, QueryError> {
    par_join_with_cover(relations, None, cfg)
}

/// Like [`par_join`] with an explicit fractional cover (validated; one
/// weight per relation in input order).
///
/// # Errors
/// Same as [`wcoj_core::join_with`]; additionally
/// [`QueryError::BadCover`] for invalid covers.
pub fn par_join_with_cover(
    relations: &[Relation],
    cover: Option<&[f64]>,
    cfg: &ExecConfig,
) -> Result<JoinOutput, QueryError> {
    let prepared = PreparedQuery::<TrieIndex>::new_indexed(relations)?;
    par_join_prepared(&prepared, cover, cfg)
}

/// Runs the partition-parallel join over an existing preparation,
/// sharing its indexes across all workers (paper Remark 5.2: pay the
/// indexing once). Generic over the [`SearchTree`] backend.
///
/// # Errors
/// [`QueryError::BadCover`] for invalid covers; LP errors when solving
/// for the optimum.
pub fn par_join_prepared<S>(
    prepared: &PreparedQuery<S>,
    cover: Option<&[f64]>,
    cfg: &ExecConfig,
) -> Result<JoinOutput, QueryError>
where
    S: SearchTree + Sync,
{
    if prepared.query().relations().iter().any(Relation::is_empty) {
        return Ok(JoinOutput {
            relation: Relation::empty(prepared.query().output_schema()),
            stats: JoinStats {
                algorithm_used: "nprr-parallel",
                ..JoinStats::default()
            },
        });
    }
    let (x, log2_bound) = prepared.resolve_cover(cover)?;
    Ok(par_run(prepared, &x, log2_bound, cfg))
}

/// The pool run: plan shards, fan out, merge. Infallible once the cover
/// is resolved.
fn par_run<S>(
    prepared: &PreparedQuery<S>,
    x: &[f64],
    log2_bound: f64,
    cfg: &ExecConfig,
) -> JoinOutput
where
    S: SearchTree + Sync,
{
    // ~4× oversplit keeps the pool busy when value ranges carry skewed
    // amounts of work; the atomic cursor below is the (trivial) stealing.
    let max_shards = cfg.threads.max(1) * 4;
    let shards = if cfg.threads > 1 {
        plan_shards(&prepared.root_candidates(), max_shards, cfg.shard_min_size)
    } else {
        Vec::new()
    };

    let mut stats = JoinStats {
        algorithm_used: "nprr-parallel",
        log2_agm_bound: log2_bound,
        cover: x.to_vec(),
        ..JoinStats::default()
    };

    if shards.len() <= 1 {
        // Degenerate plan: run unrestricted on this thread.
        let (rows, run_stats) = prepared.run_shard(x, log2_bound, None);
        stats.absorb(&run_stats);
        return prepared
            .assemble(rows, stats)
            .expect("total-order rows assemble");
    }

    // One worker result: (shard index, raw rows, run statistics).
    type ShardResult = (usize, Vec<Vec<Value>>, JoinStats);
    let n_workers = cfg.threads.min(shards.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<ShardResult>> = Mutex::new(Vec::with_capacity(shards.len()));

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&shard) = shards.get(i) else { break };
                let (rows, run_stats) = prepared.run_shard(x, log2_bound, Some(shard));
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((i, rows, run_stats));
            });
        }
    });

    // Merge deterministically in root-value (= shard-index) order.
    let mut per_shard = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    per_shard.sort_unstable_by_key(|(i, _, _)| *i);
    debug_assert_eq!(per_shard.len(), shards.len(), "every shard ran once");
    let mut rows = Vec::with_capacity(per_shard.iter().map(|(_, r, _)| r.len()).sum());
    for (_, shard_rows, run_stats) in per_shard {
        rows.extend(shard_rows);
        stats.absorb(&run_stats);
    }
    prepared
        .assemble(rows, stats)
        .expect("total-order rows assemble")
}

/// The [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel)
/// executor registered by [`install`]: builds a preparation for the query
/// and runs with [`ExecConfig::from_env`].
fn hook_executor(q: &JoinQuery, x: &[f64], log2_bound: f64) -> Result<JoinOutput, QueryError> {
    let prepared = PreparedQuery::<TrieIndex>::from_query(q.clone())?;
    Ok(par_run(&prepared, x, log2_bound, &ExecConfig::from_env()))
}

/// Registers this engine as the process-wide executor for
/// [`Algorithm::NprrParallel`](wcoj_core::Algorithm::NprrParallel).
/// Idempotent and cheap — call freely before `join_with`.
pub fn install() {
    wcoj_core::register_parallel_executor(hook_executor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_core::{join_with, Algorithm};
    use wcoj_storage::{HashTrieIndex, Schema};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn assert_matches_sequential(rels: &[Relation], cfg: &ExecConfig, ctx: &str) {
        let seq = join_with(rels, Algorithm::Nprr, None).unwrap();
        let par = par_join(rels, cfg).unwrap();
        assert_eq!(par.relation, seq.relation, "{ctx}");
        assert_eq!(par.stats.algorithm_used, "nprr-parallel", "{ctx}");
    }

    #[test]
    fn plan_covers_domain_and_respects_floor() {
        let cands: Vec<Value> = (0..40u64).map(|i| Value(i * 3)).collect();
        let plan = plan_shards(&cands, 4, 1);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].lo, Value(0));
        assert_eq!(plan.last().unwrap().hi, Value(u64::MAX));
        for w in plan.windows(2) {
            assert_eq!(w[1].lo.0, w[0].hi.0 + 1, "gap-free");
        }
        // floor: 40 candidates at min 30 per shard → no useful split
        assert!(plan_shards(&cands, 4, 30).is_empty());
        assert!(plan_shards(&[], 4, 1).is_empty());
        assert!(plan_shards(&cands, 1, 1).is_empty());
    }

    #[test]
    fn triangle_matches_sequential_across_thread_counts() {
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], 120, 12),
            wcoj_datagen::random_relation(2, &[1, 2], 120, 12),
            wcoj_datagen::random_relation(3, &[0, 2], 120, 12),
        ];
        for threads in [1, 2, 4, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
            };
            assert_matches_sequential(&rels, &cfg, &format!("triangle t={threads}"));
        }
    }

    #[test]
    fn hard_triangle_and_paper_examples() {
        let cfg = ExecConfig {
            threads: 4,
            shard_min_size: 1,
        };
        // Example 2.2: the adversarial empty-output triangle.
        assert_matches_sequential(&wcoj_datagen::example_2_2(64), &cfg, "example 2.2");
        // AGM-tight grid triangle.
        assert_matches_sequential(&wcoj_datagen::agm_tight_triangle(6), &cfg, "agm tight");
        // LW instance (n=4).
        assert_matches_sequential(&wcoj_datagen::random_lw(5, 4, 120, 8), &cfg, "lw4");
        // 5-cycle.
        assert_matches_sequential(&wcoj_datagen::cycle_instance(9, 5, 60, 10), &cfg, "5-cycle");
        // §5.2 worked example (5 relations, 6 attributes).
        assert_matches_sequential(&wcoj_datagen::worked_example(7, 80, 6), &cfg, "figure 2");
    }

    #[test]
    fn degenerate_queries() {
        let cfg = ExecConfig {
            threads: 4,
            shard_min_size: 1,
        };
        // single relation
        assert_matches_sequential(&[rel(&[0, 1], &[&[1, 2], &[3, 4]])], &cfg, "single");
        // empty input relation short-circuits
        let out = par_join(
            &[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ],
            &cfg,
        )
        .unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        // nullary: join of non-empty nullary relations is "true"
        let out = par_join(&[Relation::nullary_true()], &cfg).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.arity(), 0);
    }

    #[test]
    fn explicit_cover_and_bad_cover() {
        let rels = [
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ];
        let cfg = ExecConfig::with_threads(2);
        let out = par_join_with_cover(&rels, Some(&[1.0, 1.0, 1.0]), &cfg).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert!(par_join_with_cover(&rels, Some(&[0.1, 0.1, 0.1]), &cfg).is_err());
    }

    #[test]
    fn prepared_reuse_and_hash_backend() {
        let rels = [
            wcoj_datagen::random_relation(20, &[0, 1, 2], 80, 6),
            wcoj_datagen::random_relation(21, &[2, 3], 80, 6),
            wcoj_datagen::random_relation(22, &[0, 3], 80, 6),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        for threads in [2, 8] {
            let cfg = ExecConfig {
                threads,
                shard_min_size: 1,
            };
            let a = par_join_prepared(&sorted, None, &cfg).unwrap();
            let b = par_join_prepared(&hashed, None, &cfg).unwrap();
            assert_eq!(a.relation, seq.relation, "sorted t={threads}");
            assert_eq!(b.relation, seq.relation, "hashed t={threads}");
        }
        // reuse is cheap: second evaluation over the same preparation
        let again = par_join_prepared(&sorted, None, &ExecConfig::with_threads(4)).unwrap();
        assert_eq!(again.relation, seq.relation);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let rels = [
            wcoj_datagen::random_relation(30, &[0, 1], 200, 16),
            wcoj_datagen::random_relation(31, &[1, 2], 200, 16),
            wcoj_datagen::random_relation(32, &[0, 2], 200, 16),
        ];
        let out = par_join(
            &rels,
            &ExecConfig {
                threads: 4,
                shard_min_size: 1,
            },
        )
        .unwrap();
        assert!(out.stats.shards > 1, "plan actually split");
        assert!(out.stats.case_a + out.stats.case_b > 0);
        assert!(out.stats.log2_agm_bound > 0.0);
    }

    #[test]
    fn install_enables_algorithm_variant() {
        install();
        install(); // idempotent
        let rels = [
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ];
        let out = join_with(&rels, Algorithm::NprrParallel, None).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.stats.algorithm_used, "nprr-parallel");
    }
}
