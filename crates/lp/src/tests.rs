use crate::*;
use proptest::prelude::*;
use wcoj_rational::Rational;

fn r(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

#[test]
fn doc_example() {
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.ge(vec![1.0, 2.0], 2.0);
    lp.ge(vec![3.0, 1.0], 3.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 1.4).abs() < 1e-9);
    assert!((sol.x[0] - 0.8).abs() < 1e-9);
    assert!((sol.x[1] - 0.6).abs() < 1e-9);
}

#[test]
fn triangle_cover_lp_f64() {
    // The motivating example of the paper: triangle query, equal sizes.
    // min x_R + x_S + x_T  s.t. each attribute covered:
    //   A: x_R + x_T ≥ 1, B: x_R + x_S ≥ 1, C: x_S + x_T ≥ 1.
    // Optimum (1/2, 1/2, 1/2), objective 3/2.
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
    lp.ge(vec![1.0, 0.0, 1.0], 1.0);
    lp.ge(vec![1.0, 1.0, 0.0], 1.0);
    lp.ge(vec![0.0, 1.0, 1.0], 1.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 1.5).abs() < 1e-9);
    for v in &sol.x {
        assert!((v - 0.5).abs() < 1e-9);
    }
}

#[test]
fn triangle_cover_lp_exact() {
    // Same LP in exact arithmetic: the vertex is exactly (1/2, 1/2, 1/2) —
    // the half-integrality of Lemma 7.2 witnessed exactly.
    let one = Rational::ONE;
    let zero = Rational::ZERO;
    let mut lp = LinearProgram::minimize(vec![one, one, one]);
    lp.ge(vec![one, zero, one], one);
    lp.ge(vec![one, one, zero], one);
    lp.ge(vec![zero, one, one], one);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(sol.objective, r(3, 2));
    assert_eq!(sol.x, vec![Rational::ONE_HALF; 3]);
    assert_eq!(sol.support(), vec![0, 1, 2]);
}

#[test]
fn le_constraints_and_degenerate_start() {
    // min -x - y s.t. x ≤ 2, y ≤ 3, x + y ≤ 4  → optimum -4 on a face.
    let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
    lp.le(vec![1.0, 0.0], 2.0);
    lp.le(vec![0.0, 1.0], 3.0);
    lp.le(vec![1.0, 1.0], 4.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective + 4.0).abs() < 1e-9);
    assert!((sol.x[0] + sol.x[1] - 4.0).abs() < 1e-9);
}

#[test]
fn equality_constraints() {
    // min x + 2y s.t. x + y = 3, x ≤ 1 → x=1, y=2, obj 5.
    let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
    lp.equals(vec![1.0, 1.0], 3.0);
    lp.le(vec![1.0, 0.0], 1.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 5.0).abs() < 1e-9);
    assert!((sol.x[0] - 1.0).abs() < 1e-9);
    assert!((sol.x[1] - 2.0).abs() < 1e-9);
}

#[test]
fn infeasible_detected() {
    // x ≥ 2 and x ≤ 1 cannot both hold.
    let mut lp = LinearProgram::minimize(vec![1.0]);
    lp.ge(vec![1.0], 2.0);
    lp.le(vec![1.0], 1.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Infeasible);
}

#[test]
fn unbounded_detected() {
    // min -x with only x ≥ 1 → unbounded below.
    let mut lp = LinearProgram::minimize(vec![-1.0]);
    lp.ge(vec![1.0], 1.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Unbounded);
}

#[test]
fn negative_rhs_normalised() {
    // -x ≤ -2 is x ≥ 2.
    let mut lp = LinearProgram::minimize(vec![1.0]);
    lp.le(vec![-1.0], -2.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.x[0] - 2.0).abs() < 1e-9);
}

#[test]
fn no_variables_is_bad_problem() {
    let lp = LinearProgram::<f64>::minimize(vec![]);
    assert_eq!(solve(&lp), Err(LpError::BadProblem("no variables")));
}

#[test]
fn weighted_cover_prefers_cheap_edges() {
    // Triangle cover where edge T is very expensive (large relation):
    // objective weights ln N: (ln 10, ln 10, ln 1000). Optimal cover puts
    // weight 1 on R and S and 0 on T: A covered by R, B by both, C by S.
    let w = [10f64.ln(), 10f64.ln(), 1000f64.ln()];
    let mut lp = LinearProgram::minimize(w.to_vec());
    lp.ge(vec![1.0, 0.0, 1.0], 1.0); // A ∈ R, T
    lp.ge(vec![1.0, 1.0, 0.0], 1.0); // B ∈ R, S
    lp.ge(vec![0.0, 1.0, 1.0], 1.0); // C ∈ S, T
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.x[0] - 1.0).abs() < 1e-9);
    assert!((sol.x[1] - 1.0).abs() < 1e-9);
    assert!(sol.x[2].abs() < 1e-9);
}

#[test]
fn lw4_cover_exact_thirds() {
    // LW instance n=4: attributes {0,1,2,3}, edges all 3-subsets; optimal
    // cover is uniform 1/3 (so the vertex has denominators 3 — a case f64
    // cannot certify exactly).
    let one = Rational::ONE;
    let zero = Rational::ZERO;
    let mut lp = LinearProgram::minimize(vec![one; 4]);
    // edges: {1,2,3},{0,2,3},{0,1,3},{0,1,2}; attr v covered by all edges not
    // omitting v.
    for v in 0..4usize {
        let coeffs: Vec<Rational> = (0..4).map(|e| if e == v { zero } else { one }).collect();
        lp.ge(coeffs, one);
    }
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(sol.objective, r(4, 3));
    for v in &sol.x {
        assert_eq!(*v, r(1, 3));
    }
}

#[test]
fn rationalize_preserves_integral_constraints() {
    let mut lp = LinearProgram::minimize(vec![0.5, 1.0 / 3.0]);
    lp.ge(vec![1.0, 1.0], 1.0);
    let ex = rationalize(&lp, 1 << 20);
    assert_eq!(ex.objective()[0], Rational::ONE_HALF);
    assert_eq!(ex.objective()[1], r(1, 3));
    assert_eq!(ex.constraints()[0].coeffs, vec![Rational::ONE; 2]);
    let sol = solve(&ex).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(sol.objective, r(1, 3)); // put all weight on the cheap var
}

#[test]
fn is_feasible_checks() {
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.ge(vec![1.0, 1.0], 1.0);
    lp.le(vec![1.0, 0.0], 2.0);
    assert!(lp.is_feasible(&[0.5, 0.5]));
    assert!(!lp.is_feasible(&[0.2, 0.2])); // violates ≥
    assert!(!lp.is_feasible(&[3.0, 0.0])); // violates ≤
    assert!(!lp.is_feasible(&[-0.5, 2.0])); // negative variable
    assert!(!lp.is_feasible(&[1.0])); // arity mismatch
}

#[test]
fn redundant_equality_rows() {
    // x + y = 2 listed twice: phase 1 must cope with the redundant artificial.
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.equals(vec![1.0, 1.0], 2.0);
    lp.equals(vec![1.0, 1.0], 2.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 2.0).abs() < 1e-9);
}

#[test]
fn all_ones_cover_always_feasible() {
    // For every hypergraph where each vertex is in ≥ 1 edge, x = 1 is
    // feasible (paper §2); sanity-check on a random-ish 5-edge structure.
    let edges: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]];
    let n_attrs = 5;
    let mut lp = LinearProgram::minimize(vec![1.0; edges.len()]);
    for v in 0..n_attrs {
        let coeffs: Vec<f64> = edges
            .iter()
            .map(|e| if e.contains(&v) { 1.0 } else { 0.0 })
            .collect();
        lp.ge(coeffs, 1.0);
    }
    assert!(lp.is_feasible(&vec![1.0; edges.len()]));
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    // odd 5-cycle: optimal fractional cover is 1/2 each, objective 5/2.
    assert!((sol.objective - 2.5).abs() < 1e-9);
}

proptest! {
    /// Random small covers: simplex optimum is feasible and no worse than the
    /// all-ones cover.
    #[test]
    fn prop_cover_lp_optimum_feasible(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_attr = rng.gen_range(2..6usize);
        let n_edge = rng.gen_range(2..6usize);
        // random edges, then patch so every attribute is covered
        let mut edges: Vec<Vec<usize>> = (0..n_edge)
            .map(|_| (0..n_attr).filter(|_| rng.gen_bool(0.5)).collect())
            .collect();
        for v in 0..n_attr {
            if !edges.iter().any(|e| e.contains(&v)) {
                let k = rng.gen_range(0..n_edge);
                edges[k].push(v);
            }
        }
        let weights: Vec<f64> = (0..n_edge).map(|_| rng.gen_range(0.1..5.0f64)).collect();
        let mut lp = LinearProgram::minimize(weights.clone());
        for v in 0..n_attr {
            let coeffs: Vec<f64> = edges.iter().map(|e| if e.contains(&v) {1.0} else {0.0}).collect();
            lp.ge(coeffs, 1.0);
        }
        let sol = solve(&lp).unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.is_feasible(&sol.x));
        let all_ones_obj: f64 = weights.iter().sum();
        prop_assert!(sol.objective <= all_ones_obj + 1e-9);
    }

    /// The f64 and exact-rational solvers agree on the optimum of integral
    /// LPs (objective coefficients are small integers).
    #[test]
    fn prop_f64_and_exact_agree(seed in 0u64..300) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_attr = rng.gen_range(2..5usize);
        let n_edge = rng.gen_range(2..5usize);
        let mut edges: Vec<Vec<usize>> = (0..n_edge)
            .map(|_| (0..n_attr).filter(|_| rng.gen_bool(0.6)).collect())
            .collect();
        for v in 0..n_attr {
            if !edges.iter().any(|e| e.contains(&v)) {
                let k = rng.gen_range(0..n_edge);
                edges[k].push(v);
            }
        }
        let weights: Vec<i64> = (0..n_edge).map(|_| rng.gen_range(1..10i64)).collect();
        let mut lp_f = LinearProgram::minimize(weights.iter().map(|&w| w as f64).collect());
        let mut lp_r = LinearProgram::minimize(weights.iter().map(|&w| Rational::from_int(w as i128)).collect());
        for v in 0..n_attr {
            let cf: Vec<f64> = edges.iter().map(|e| if e.contains(&v) {1.0} else {0.0}).collect();
            let cr: Vec<Rational> = edges.iter().map(|e| if e.contains(&v) {Rational::ONE} else {Rational::ZERO}).collect();
            lp_f.ge(cf, 1.0);
            lp_r.ge(cr, Rational::ONE);
        }
        let sf = solve(&lp_f).unwrap();
        let sr = solve(&lp_r).unwrap();
        prop_assert_eq!(sf.status, Status::Optimal);
        prop_assert_eq!(sr.status, Status::Optimal);
        prop_assert!((sf.objective - sr.objective.to_f64()).abs() < 1e-6);
    }
}

#[test]
fn exact_overflow_reported_not_panicked() {
    // Gigantic coefficients force i128 overflow during pivoting; the
    // solver must surface LpError::Overflow instead of panicking.
    let huge = r(i128::MAX / 2, 1);
    let tiny = r(1, i128::MAX / 2);
    let mut lp = LinearProgram::minimize(vec![huge, tiny]);
    lp.ge(vec![huge, tiny], huge);
    lp.ge(vec![tiny, huge], r(3, 1));
    match solve(&lp) {
        Err(LpError::Overflow) => {}
        Ok(sol) => assert_eq!(sol.status, Status::Optimal), // small LPs may survive
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn degenerate_lp_terminates_with_blands_rule() {
    // A highly degenerate LP (many redundant constraints through one
    // vertex); Bland's rule must terminate.
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
    for _ in 0..6 {
        lp.ge(vec![1.0, 1.0, 1.0], 1.0);
    }
    lp.ge(vec![1.0, 0.0, 0.0], 0.0);
    lp.ge(vec![0.0, 1.0, 0.0], 0.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 1.0).abs() < 1e-9);
}

#[test]
fn zero_objective_feasibility_check() {
    // All-zero objective: simplex acts as a pure feasibility oracle.
    let mut lp = LinearProgram::minimize(vec![0.0, 0.0]);
    lp.ge(vec![1.0, 1.0], 2.0);
    lp.le(vec![1.0, 0.0], 5.0);
    let sol = solve(&lp).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(lp.is_feasible(&sol.x));
}

#[test]
fn basic_structural_reported() {
    let mut lp = LinearProgram::minimize(vec![1.0, 10.0]);
    lp.ge(vec![1.0, 1.0], 1.0);
    let sol = solve(&lp).unwrap();
    // only x0 should be basic with positive value
    assert_eq!(sol.support(), vec![0]);
    assert!(sol.basic_structural.contains(&0));
}
