//! A small, self-contained linear-programming toolkit.
//!
//! The NPRR paper treats "solve the fractional edge-cover linear program" as
//! a black-box preprocessing step (§2, Remark 5.2). No LP solver is in the
//! allowed dependency set, so this crate implements one from scratch:
//!
//! * [`LinearProgram`] — a minimisation problem `min c·x` subject to linear
//!   constraints with `≤ / ≥ / =` senses and `x ≥ 0`;
//! * [`simplex::solve`] — a dense **two-phase primal simplex** with Bland's
//!   anti-cycling rule, generic over the [`Scalar`] trait;
//! * two scalar instantiations: `f64` (fast, epsilon comparisons; used for
//!   AGM-bound computations in hot paths) and
//!   [`wcoj_rational::Rational`] (exact; used wherever the *vertex
//!   structure* of the cover polytope matters, e.g. the half-integrality
//!   proof of Lemma 7.2 and the `BFS(S)` equivalence classes of §7.2).
//!
//! The solver returns not just an optimal point but the final **basis**,
//! because the paper's relaxed join algorithm (Algorithm 6) groups edge
//! subsets by the *support of an optimal basic feasible solution*, and
//! Lemma 7.2's proof is about extreme points, not merely optimal values.
//!
//! Determinism: given the same problem the solver performs the same pivots
//! (Bland's rule is deterministic), so `BFS(S)` is computed "in a consistent
//! manner" as §7.2 requires.

mod problem;
mod scalar;
pub mod simplex;

pub use problem::{Constraint, LinearProgram, Sense};
pub use scalar::Scalar;
pub use simplex::{solve, LpError, Solution, Status};

use wcoj_rational::Rational;

/// Converts an `f64` LP into an exact rational LP by approximating every
/// coefficient with denominator at most `max_den`.
///
/// Intended for cover LPs whose constraint coefficients are already integral
/// (so only the objective is approximated); the *feasible region* of the
/// result is then identical to the source LP's, and every structural
/// property of its optimal vertex (support, half-integrality, tightness) is
/// exact.
#[must_use]
pub fn rationalize(lp: &LinearProgram<f64>, max_den: i128) -> LinearProgram<Rational> {
    let approx = |x: f64| Rational::approximate_f64(x, max_den).unwrap_or(Rational::ZERO);
    let mut out = LinearProgram::minimize(lp.objective().iter().copied().map(approx).collect());
    for c in lp.constraints() {
        out.add_constraint(Constraint {
            coeffs: c.coeffs.iter().copied().map(approx).collect(),
            sense: c.sense,
            rhs: approx(c.rhs),
        });
    }
    out
}

#[cfg(test)]
mod tests;
