//! The numeric abstraction the simplex solver is generic over.

use std::fmt::Debug;
use wcoj_rational::Rational;

/// A totally ordered field with a notion of "numerically zero".
///
/// `f64` uses an absolute epsilon of `1e-9` — ample for cover LPs whose
/// coefficients are `{0, 1}` and whose objective weights are `ln N_e` with
/// `N_e ≤ 2^63`. [`Rational`] comparisons are exact.
pub trait Scalar: Clone + Debug + PartialEq {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a small integer.
    fn from_i64(v: i64) -> Self;

    /// `self + rhs`; `None` on overflow (never for `f64`).
    fn add(&self, rhs: &Self) -> Option<Self>;
    /// `self - rhs`; `None` on overflow.
    fn sub(&self, rhs: &Self) -> Option<Self>;
    /// `self * rhs`; `None` on overflow.
    fn mul(&self, rhs: &Self) -> Option<Self>;
    /// `self / rhs`; `None` on overflow or division by (numeric) zero.
    fn div(&self, rhs: &Self) -> Option<Self>;
    /// `-self`.
    fn neg(&self) -> Self;

    /// Numerically zero (|x| ≤ ε for `f64`, exact for rationals).
    fn is_zero(&self) -> bool;
    /// Strictly negative beyond the tolerance.
    fn is_negative(&self) -> bool;
    /// Strictly positive beyond the tolerance.
    fn is_positive(&self) -> bool {
        !self.is_zero() && !self.is_negative()
    }
    /// Tolerance-aware strict less-than.
    fn lt(&self, rhs: &Self) -> bool;

    /// Lossy view for reporting.
    fn to_f64(&self) -> f64;
}

/// Absolute tolerance for `f64` simplex pivoting.
pub const F64_EPS: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn add(&self, rhs: &Self) -> Option<Self> {
        Some(self + rhs)
    }
    fn sub(&self, rhs: &Self) -> Option<Self> {
        Some(self - rhs)
    }
    fn mul(&self, rhs: &Self) -> Option<Self> {
        Some(self * rhs)
    }
    fn div(&self, rhs: &Self) -> Option<Self> {
        if rhs.abs() <= F64_EPS {
            None
        } else {
            Some(self / rhs)
        }
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }
    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }
    fn lt(&self, rhs: &Self) -> bool {
        *self < rhs - F64_EPS
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn from_i64(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
    fn add(&self, rhs: &Self) -> Option<Self> {
        self.checked_add(*rhs)
    }
    fn sub(&self, rhs: &Self) -> Option<Self> {
        self.checked_sub(*rhs)
    }
    fn mul(&self, rhs: &Self) -> Option<Self> {
        self.checked_mul(*rhs)
    }
    fn div(&self, rhs: &Self) -> Option<Self> {
        self.checked_div(*rhs)
    }
    fn neg(&self) -> Self {
        -*self
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(*self)
    }
    fn is_negative(&self) -> bool {
        Rational::is_negative(*self)
    }
    fn lt(&self, rhs: &Self) -> bool {
        self < rhs
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(*self)
    }
}
