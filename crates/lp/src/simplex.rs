//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Cover LPs are tiny (one variable per hyperedge, one constraint per
//! attribute), so a dense tableau recomputing reduced costs per iteration is
//! both simple and plenty fast. Bland's rule guarantees termination, which
//! matters for the exact-rational instantiation where degenerate vertices of
//! the cover polytope are common (e.g. every LW instance is degenerate).

use crate::problem::{dot, LinearProgram, Sense};
use crate::scalar::Scalar;
use std::fmt;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

/// Solver failures that are *errors*, not problem classifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Exact arithmetic overflowed `i128`. Retry with `f64`.
    Overflow,
    /// Safety iteration cap hit (should not happen with Bland's rule).
    IterationLimit,
    /// Structurally malformed input (e.g. no variables).
    BadProblem(&'static str),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Overflow => write!(f, "exact arithmetic overflow during pivoting"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::BadProblem(m) => write!(f, "malformed linear program: {m}"),
        }
    }
}
impl std::error::Error for LpError {}

/// Result of a solve: status plus (when optimal) the optimal vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<S> {
    /// Problem classification.
    pub status: Status,
    /// Values of the structural variables (empty unless [`Status::Optimal`]).
    pub x: Vec<S>,
    /// Objective value at `x` (zero unless optimal).
    pub objective: S,
    /// Structural variables that are **basic** in the final tableau.
    ///
    /// The support of the returned vertex is a subset of this set; §7.2's
    /// `BFS(S)` uses the *positive-value* support, see [`Solution::support`].
    pub basic_structural: Vec<usize>,
}

impl<S: Scalar> Solution<S> {
    /// Indices of structural variables with strictly positive value — the
    /// support of the basic feasible solution (paper §7.2, `BFS(S)`).
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        self.x
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_positive())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Column classification in the standard-form tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Col {
    Structural(usize),
    Slack,
    Artificial,
}

struct Tableau<S> {
    /// `rows × (cols + 1)`; last entry of each row is the RHS.
    rows: Vec<Vec<S>>,
    /// Basis: for each row, the index of its basic column.
    basis: Vec<usize>,
    kind: Vec<Col>,
    /// Columns barred from entering (artificials in phase 2).
    banned: Vec<bool>,
    cols: usize,
}

impl<S: Scalar> Tableau<S> {
    fn rhs(&self, i: usize) -> &S {
        &self.rows[i][self.cols]
    }

    /// Reduced cost of column `j` under costs `c`: `c_j − c_B · B⁻¹A_j`.
    fn reduced_cost(&self, c: &[S], j: usize) -> Option<S> {
        let mut acc = c[j].clone();
        for (i, row) in self.rows.iter().enumerate() {
            let cb = &c[self.basis[i]];
            if !cb.is_zero() && !row[j].is_zero() {
                acc = acc.sub(&cb.mul(&row[j])?)?;
            }
        }
        Some(acc)
    }

    /// Performs one pivot on `(row, col)`.
    fn pivot(&mut self, r: usize, c: usize) -> Result<(), LpError> {
        let piv = self.rows[r][c].clone();
        let inv = S::one().div(&piv).ok_or(LpError::Overflow)?;
        for v in &mut self.rows[r] {
            if !v.is_zero() {
                *v = v.mul(&inv).ok_or(LpError::Overflow)?;
            }
        }
        self.rows[r][c] = S::one();
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r || row[c].is_zero() {
                continue;
            }
            let factor = row[c].clone();
            for (v, p) in row.iter_mut().zip(&pivot_row) {
                if !p.is_zero() {
                    *v = v
                        .sub(&factor.mul(p).ok_or(LpError::Overflow)?)
                        .ok_or(LpError::Overflow)?;
                }
            }
            row[c] = S::zero();
        }
        self.basis[r] = c;
        Ok(())
    }

    /// Runs simplex iterations to optimality for costs `c` (minimisation).
    /// Returns `Ok(true)` if optimal, `Ok(false)` if unbounded.
    fn optimize(&mut self, c: &[S], max_iters: usize) -> Result<bool, LpError> {
        for _ in 0..max_iters {
            // Bland's rule: entering = smallest-index column with negative
            // reduced cost.
            let mut entering = None;
            for j in 0..self.cols {
                if self.banned[j] || self.basis.contains(&j) {
                    continue;
                }
                let rc = self.reduced_cost(c, j).ok_or(LpError::Overflow)?;
                if rc.is_negative() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                return Ok(true); // optimal
            };
            // Ratio test; Bland tie-break on smallest basic variable index.
            let mut leave: Option<(usize, S)> = None;
            for i in 0..self.rows.len() {
                let a = &self.rows[i][j];
                if !a.is_positive() {
                    continue;
                }
                let ratio = self.rhs(i).div(a).ok_or(LpError::Overflow)?;
                let better = match &leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio.lt(lr) || (!lr.lt(&ratio) && self.basis[i] < self.basis[*li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
            let Some((r, _)) = leave else {
                return Ok(false); // unbounded direction
            };
            self.pivot(r, j)?;
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves `lp` with the two-phase primal simplex.
///
/// # Errors
/// Returns [`LpError`] on arithmetic overflow (exact scalars only), the
/// safety iteration cap, or a malformed problem. Infeasibility and
/// unboundedness are reported via [`Solution::status`], not as errors.
pub fn solve<S: Scalar>(lp: &LinearProgram<S>) -> Result<Solution<S>, LpError> {
    let n = lp.num_vars();
    if n == 0 {
        return Err(LpError::BadProblem("no variables"));
    }
    let m = lp.num_constraints();

    // ---- standard form -------------------------------------------------
    // Count extra columns: one slack/surplus per inequality, one artificial
    // per Ge/Eq row (and per Le row with negative rhs, which flips to Ge).
    let mut kind = vec![Col::Slack; 0];
    for j in 0..n {
        kind.push(Col::Structural(j));
    }
    let mut rows: Vec<Vec<S>> = Vec::with_capacity(m);
    let mut senses = Vec::with_capacity(m);
    for c in lp.constraints() {
        let mut row: Vec<S> = c.coeffs.clone();
        let mut rhs = c.rhs.clone();
        let mut sense = c.sense;
        if rhs.is_negative() {
            for v in &mut row {
                *v = v.neg();
            }
            rhs = rhs.neg();
            sense = match sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        row.push(rhs);
        rows.push(row);
        senses.push(sense);
    }

    // Allocate slack/surplus columns.
    let mut slack_col = vec![usize::MAX; m];
    for (i, s) in senses.iter().enumerate() {
        if matches!(s, Sense::Le | Sense::Ge) {
            slack_col[i] = kind.len();
            kind.push(Col::Slack);
        }
    }
    // Allocate artificial columns.
    let mut art_col = vec![usize::MAX; m];
    for (i, s) in senses.iter().enumerate() {
        if matches!(s, Sense::Ge | Sense::Eq) {
            art_col[i] = kind.len();
            kind.push(Col::Artificial);
        }
    }
    let cols = kind.len();

    // Widen rows: structural coeffs .. slack .. artificial .. rhs.
    let mut basis = vec![usize::MAX; m];
    let mut wide: Vec<Vec<S>> = Vec::with_capacity(m);
    for (i, mut row) in rows.into_iter().enumerate() {
        let rhs = row.pop().expect("rhs present");
        row.resize(cols, S::zero());
        match senses[i] {
            Sense::Le => {
                row[slack_col[i]] = S::one();
                basis[i] = slack_col[i];
            }
            Sense::Ge => {
                row[slack_col[i]] = S::one().neg();
                row[art_col[i]] = S::one();
                basis[i] = art_col[i];
            }
            Sense::Eq => {
                row[art_col[i]] = S::one();
                basis[i] = art_col[i];
            }
        }
        row.push(rhs);
        wide.push(row);
    }

    let mut t = Tableau {
        rows: wide,
        basis,
        banned: vec![false; cols],
        kind,
        cols,
    };
    let max_iters = 1000 * (m + cols + 1);

    // ---- phase 1: minimise the sum of artificials ----------------------
    let has_artificials = t.kind.iter().any(|k| matches!(k, Col::Artificial));
    if has_artificials {
        let c1: Vec<S> = t
            .kind
            .iter()
            .map(|k| {
                if matches!(k, Col::Artificial) {
                    S::one()
                } else {
                    S::zero()
                }
            })
            .collect();
        let optimal = t.optimize(&c1, max_iters)?;
        debug_assert!(optimal, "phase 1 is bounded below by 0");
        // Phase-1 objective value = Σ artificial basic values.
        let mut p1 = S::zero();
        for (i, &b) in t.basis.iter().enumerate() {
            if matches!(t.kind[b], Col::Artificial) {
                p1 = p1.add(t.rhs(i)).ok_or(LpError::Overflow)?;
            }
        }
        if p1.is_positive() {
            return Ok(Solution {
                status: Status::Infeasible,
                x: Vec::new(),
                objective: S::zero(),
                basic_structural: Vec::new(),
            });
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for i in 0..t.rows.len() {
            let b = t.basis[i];
            if !matches!(t.kind[b], Col::Artificial) {
                continue;
            }
            let pivot_col = (0..t.cols)
                .find(|&j| !matches!(t.kind[j], Col::Artificial) && !t.rows[i][j].is_zero());
            if let Some(j) = pivot_col {
                t.pivot(i, j)?;
            }
            // If no pivot exists the row is all-zero (redundant); leaving the
            // artificial basic at value zero is harmless once it is banned.
        }
        for (j, k) in t.kind.iter().enumerate() {
            if matches!(k, Col::Artificial) {
                t.banned[j] = true;
            }
        }
    }

    // ---- phase 2: minimise the real objective --------------------------
    let mut c2 = vec![S::zero(); t.cols];
    for (j, k) in t.kind.iter().enumerate() {
        if let Col::Structural(v) = k {
            c2[j] = lp.objective()[*v].clone();
        }
    }
    let optimal = t.optimize(&c2, max_iters)?;
    if !optimal {
        return Ok(Solution {
            status: Status::Unbounded,
            x: Vec::new(),
            objective: S::zero(),
            basic_structural: Vec::new(),
        });
    }

    // ---- extract --------------------------------------------------------
    let mut x = vec![S::zero(); n];
    let mut basic_structural = Vec::new();
    for (i, &b) in t.basis.iter().enumerate() {
        if let Col::Structural(v) = t.kind[b] {
            x[v] = t.rhs(i).clone();
            basic_structural.push(v);
        }
    }
    basic_structural.sort_unstable();
    let objective = dot(lp.objective(), &x).ok_or(LpError::Overflow)?;
    debug_assert!(
        lp.is_feasible(&x),
        "simplex returned an infeasible point: {x:?}"
    );
    Ok(Solution {
        status: Status::Optimal,
        x,
        objective,
        basic_structural,
    })
}
