//! Problem representation: `min c·x` subject to linear constraints, `x ≥ 0`.

use crate::scalar::Scalar;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One linear constraint `coeffs · x  <sense>  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint<S> {
    /// Dense coefficient row, one entry per variable.
    pub coeffs: Vec<S>,
    /// Constraint direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: S,
}

/// A minimisation LP over non-negative variables.
///
/// ```
/// use wcoj_lp::{LinearProgram, Sense, solve, Status};
/// // min x + y  s.t.  x + 2y ≥ 2,  3x + y ≥ 3
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.ge(vec![1.0, 2.0], 2.0);
/// lp.ge(vec![3.0, 1.0], 3.0);
/// let sol = solve(&lp).unwrap();
/// assert_eq!(sol.status, Status::Optimal);
/// assert!((sol.objective - 1.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram<S> {
    objective: Vec<S>,
    constraints: Vec<Constraint<S>>,
}

impl<S: Scalar> LinearProgram<S> {
    /// Starts a minimisation problem with the given objective coefficients.
    #[must_use]
    pub fn minimize(objective: Vec<S>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficient vector.
    #[must_use]
    pub fn objective(&self) -> &[S] {
        &self.objective
    }

    /// The constraint rows.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint<S>] {
        &self.constraints
    }

    /// Adds a fully specified constraint.
    ///
    /// # Panics
    /// Panics if the coefficient row's length differs from the variable
    /// count (a programming error, not a data error).
    pub fn add_constraint(&mut self, c: Constraint<S>) {
        assert_eq!(c.coeffs.len(), self.num_vars(), "constraint arity mismatch");
        self.constraints.push(c);
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn le(&mut self, coeffs: Vec<S>, rhs: S) {
        self.add_constraint(Constraint {
            coeffs,
            sense: Sense::Le,
            rhs,
        });
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn ge(&mut self, coeffs: Vec<S>, rhs: S) {
        self.add_constraint(Constraint {
            coeffs,
            sense: Sense::Ge,
            rhs,
        });
    }

    /// Adds `coeffs · x = rhs`. (Named `equals` to avoid clashing with `PartialEq::eq`.)
    pub fn equals(&mut self, coeffs: Vec<S>, rhs: S) {
        self.add_constraint(Constraint {
            coeffs,
            sense: Sense::Eq,
            rhs,
        });
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_at(&self, x: &[S]) -> Option<S> {
        dot(&self.objective, x)
    }

    /// Checks feasibility of `x` (with the scalar's own tolerance).
    #[must_use]
    pub fn is_feasible(&self, x: &[S]) -> bool {
        if x.len() != self.num_vars() || x.iter().any(Scalar::is_negative) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let Some(lhs) = dot(&c.coeffs, x) else {
                return false;
            };
            match c.sense {
                Sense::Le => !c.rhs.lt(&lhs),
                Sense::Ge => !lhs.lt(&c.rhs),
                Sense::Eq => {
                    let Some(d) = lhs.sub(&c.rhs) else {
                        return false;
                    };
                    d.is_zero()
                }
            }
        })
    }
}

/// Dense dot product; `None` on arithmetic overflow.
pub(crate) fn dot<S: Scalar>(a: &[S], b: &[S]) -> Option<S> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::zero();
    for (x, y) in a.iter().zip(b) {
        acc = acc.add(&x.mul(y)?)?;
    }
    Some(acc)
}
