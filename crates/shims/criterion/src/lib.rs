//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! crate.
//!
//! The build environment has no network access, so the workspace's
//! `benches/` targets link against this minimal reimplementation of the
//! criterion API surface they use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function` /
//! `sample_size` / `finish`, [`BenchmarkId::new`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simple on purpose): each benchmark runs one warm-up
//! invocation, then `sample_size` timed samples; the mean, minimum, and
//! maximum per-iteration wall time are printed as one line per benchmark.
//! There is no statistical analysis, HTML report, or saved baseline.
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! benchmark exactly once as a smoke test.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier `function_name/parameter` for one benchmark point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

/// Timing driver passed to the closure of `bench_*`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` (result is black-boxed so the body
    /// is not optimised away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager: holds global state (here: just CLI mode).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test_mode = true,
                // flags cargo bench forwards that we can ignore
                "--bench" | "--profile-time" | "--noplot" | "--quiet" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id: BenchmarkId = id.into();
        run_one(&id.id, 10, self.test_mode, self.filter.as_deref(), f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            self.criterion.filter.as_deref(),
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            self.criterion.filter.as_deref(),
            |b| f(b),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    full_name: &str,
    sample_size: usize,
    test_mode: bool,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return;
        }
    }
    let samples = if test_mode { 1 } else { sample_size };
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    // one warm-up, then the timed samples
    for i in 0..=samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if i > 0 {
            times.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let (lo, hi) = times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
        (lo.min(t), hi.max(t))
    });
    println!(
        "{full_name:<50} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark entry function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("count", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
