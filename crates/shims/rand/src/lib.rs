//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal, dependency-free reimplementation of exactly the `rand 0.8` API
//! surface the other crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`distributions::Uniform`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-data generation and fully deterministic per seed. The
//! *streams differ from upstream `rand`*; nothing in the workspace depends
//! on exact upstream values, only on per-seed determinism.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the "standard" distribution of `T`
    /// (`f64` uniform in `[0, 1)`, `bool` fair, integers uniform).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` bits → uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// (Upstream `StdRng` is ChaCha12; this shim trades the crypto-grade
    /// stream for zero dependencies. Determinism per seed is preserved.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! The small distribution vocabulary the workspace uses.
    use super::{unit_f64, RngCore};

    /// A distribution over `T` sampled with an explicit generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution, reached through [`Rng::gen`].
    pub trait Standard: Sized {
        /// Draws one standard sample.
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }
    impl Standard for bool {
        fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Standard for u64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Uniform distribution over `[lo, hi)`, the `Uniform::new` form.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over the half-open range `[lo, hi)`.
        ///
        /// # Panics
        /// Panics when `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Uniform<T> {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy + PartialOrd,
        std::ops::Range<T>: uniform::SampleRange<T>,
    {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            uniform::SampleRange::sample_single(self.lo..self.hi, rng)
        }
    }

    pub mod uniform {
        //! Range sampling used by [`Rng::gen_range`](super::super::Rng::gen_range).
        use super::super::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that knows how to draw a uniform sample of itself.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        /// Uniform draw from `[0, span)` without modulo bias worth caring
        /// about for test workloads (span ≪ 2⁶⁴ here); 128-bit multiply
        /// keeps it unbiased enough and branch-free.
        #[inline]
        fn below(rng: &mut impl RngCore, span: u64) -> u64 {
            ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
        }

        // The span is computed in the type's *unsigned counterpart* ($u)
        // first: a plain `as u64` on a signed narrow type would
        // sign-extend spans wider than the type's MAX (e.g. -100i8..100).
        macro_rules! int_range {
            ($(($t:ty, $u:ty)),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = self.end.wrapping_sub(self.start) as $u as u64;
                        self.start.wrapping_add(below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = hi.wrapping_sub(lo) as $u as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(below(rng, span + 1) as $t)
                    }
                }
            )*};
        }
        int_range!(
            (u8, u8),
            (u16, u16),
            (u32, u32),
            (u64, u64),
            (usize, usize),
            (i8, u8),
            (i16, u16),
            (i32, u32),
            (i64, u64),
            (isize, usize)
        );

        // i128/u128 spans exceed u64; widen the draw.
        macro_rules! wide_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = self.end.wrapping_sub(self.start) as u128;
                        let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                        self.start.wrapping_add((draw % span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = hi.wrapping_sub(lo) as u128;
                        if span == u128::MAX {
                            let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                            return draw as $t;
                        }
                        let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                        lo.wrapping_add((draw % (span + 1)) as $t)
                    }
                }
            )*};
        }
        wide_range!(u128, i128);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty gen_range");
                self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{distributions::Distribution, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.gen_range(0..1000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.gen_range(0..1000u64)).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..10).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i128..5);
            assert!((-5..5).contains(&w));
            let x = r.gen_range(0..=3usize);
            assert!(x <= 3);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            // narrow signed ranges wider than the type's MAX must not
            // sign-extend the span
            let y = r.gen_range(-100i8..100);
            assert!((-100..100).contains(&y));
            let z = r.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&z));
        }
    }

    #[test]
    fn distribution_and_standard() {
        let mut r = StdRng::seed_from_u64(2);
        let u = super::distributions::Uniform::new(0usize, 7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[u.sample(&mut r)] = true;
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads));
    }
}
