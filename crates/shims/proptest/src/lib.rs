//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! The build environment has no network access, so this shim reimplements
//! the slice of proptest this workspace uses: the [`proptest!`] macro,
//! [`ProptestConfig::with_cases`], [`prop_assert!`]/[`prop_assert_eq!`],
//! [`any`], integer-range strategies, `prop::collection::vec`, and
//! [`Strategy::prop_map`].
//!
//! Differences from upstream, deliberate for a test-only shim:
//!
//! * cases are generated from a fixed per-test seed (hash of the test
//!   name), so runs are fully deterministic — no `PROPTEST_CASES` env, no
//!   failure persistence file;
//! * there is **no shrinking**: a failing case panics with the generated
//!   inputs left to the assertion message.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Runner configuration: only the knob the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (re-exported so generated code can name it).
pub type TestRng = StdRng;

/// Deterministic per-test generator: seeded from the test's name.
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. `new_value` draws one instance.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, u128);

/// `any::<T>()` for the types the workspace asks for.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::Rng as _;
        rng.gen_range(0..2u32) == 1
    }
}
macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (uniform for the shim's types).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec` etc.).
    pub use crate::collection;
}

pub mod prelude {
    //! Everything the workspace imports via `use proptest::prelude::*`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assertion inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test block macro. Supports the upstream surface used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn prop(x in 0..10u64, v in prop::collection::vec(0..5u64, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                // The body is a plain block; prop_assert! panics on failure,
                // which the libtest harness reports.
                $body
                let _ = __case;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 5..25u64, y in -10i128..10) {
            prop_assert!((5..25).contains(&x));
            prop_assert!((-10..10).contains(&y));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0..4u64, 0..6).prop_map(|v| v.len())) {
            prop_assert!(v < 6);
        }

        #[test]
        fn any_bool(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0..100u64;
        for _ in 0..10 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
