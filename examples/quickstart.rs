//! Quickstart: the paper's motivating triangle query, three ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wcoj::prelude::*;

fn main() {
    // --- 1. the programmatic API -----------------------------------------
    // R(A,B) ⋈ S(B,C) ⋈ T(A,C) with A=0, B=1, C=2.
    let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3], &[2, 3]]);
    let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4], &[3, 5]]);
    let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4], &[2, 4], &[2, 5]]);

    let out = join(&[r.clone(), s.clone(), t.clone()]).expect("well-formed query");
    println!("triangle join has {} tuples:", out.len());
    for row in out.iter_rows() {
        println!("  (A={}, B={}, C={})", row[0].0, row[1].0, row[2].0);
    }

    // --- 2. inspecting the fractional cover and AGM bound ----------------
    let cover = agm_cover(&[r.clone(), s.clone(), t.clone()]).expect("cover LP solves");
    println!(
        "\noptimal fractional cover = {:?}, AGM bound = {:.1} tuples",
        cover.x,
        cover.bound()
    );

    // --- 3. explicit algorithm choice + execution stats ------------------
    for algo in [Algorithm::Lw, Algorithm::Nprr, Algorithm::GraphJoin] {
        let res = join_with(&[r.clone(), s.clone(), t.clone()], algo, None).expect("evaluates");
        println!(
            "{:<12} → {} tuples (case_a={}, case_b={}, intermediates={})",
            res.stats.algorithm_used,
            res.relation.len(),
            res.stats.case_a,
            res.stats.case_b,
            res.stats.intermediate_tuples,
        );
    }

    // --- 4. the text front-end --------------------------------------------
    let mut catalog = Catalog::new();
    catalog.insert("R", r);
    catalog.insert("S", s);
    catalog.insert("T", t);
    // note: the text query joins by *variable position*, so R/S/T column
    // attr ids don't matter here.
    let q = parse_query("Ans(a, b, c) :- R(a, b), S(b, c), T(a, c).").expect("parses");
    let res = execute(&q, &catalog).expect("executes");
    println!("\ntext query returned {} tuples", res.relation.len());
}
