//! Multi-rule Datalog programs on top of the worst-case-optimal engine:
//! load a CSV edge list, derive wedges, close them into triangles, and ask
//! who participates in the most cliques.
//!
//! ```sh
//! cargo run --release --example datalog_program
//! ```

use wcoj::prelude::*;
use wcoj::query::{parse_program, run_program};

fn main() {
    let mut catalog = Catalog::new();
    // A small collaboration graph (CSV straight into the catalog).
    let csv = "\
ada,grace\n\
grace,alan\n\
ada,alan\n\
alan,kurt\n\
grace,kurt\n\
ada,kurt\n\
kurt,john\n\
alan,john\n";
    let edges = load_csv(csv, catalog.dictionary()).expect("csv");
    catalog.insert("E", edges);

    let program = parse_program(
        "# undirected view of the edge list\n\
         sym(x, y) :- E(x, y).\n\
         sym(y, x) :- E(x, y).\n\
         # wedges and triangles over the symmetric closure\n\
         wedge(x, y, z) :- sym(x, y), sym(y, z).\n\
         tri(x, y, z)   :- wedge(x, y, z), sym(x, z).",
    )
    .expect("parses");

    let outputs = run_program(&program, &mut catalog).expect("runs");
    for (name, result) in &outputs {
        println!("{name}: {} tuples", result.relation.len());
    }

    let (name, tri) = outputs.last().expect("program has rules");
    assert_eq!(name, "tri");
    println!("\ntriangles (with symmetric duplicates):");
    let mut seen = std::collections::BTreeSet::new();
    for row in tri.relation.decoded(&catalog) {
        let mut names: Vec<String> = row.iter().map(ToString::to_string).collect();
        names.sort();
        if names.windows(2).any(|w| w[0] == w[1]) {
            continue; // degenerate x=y=z artifacts of the symmetric closure
        }
        if seen.insert(names.clone()) {
            println!("  {{{}}}", names.join(", "));
        }
    }
    println!("{} distinct triangles", seen.len());
}

/// Small helper: decode a relation's rows through the catalog.
trait Decoded {
    fn decoded(&self, catalog: &Catalog) -> Vec<Vec<Datum>>;
}
impl Decoded for Relation {
    fn decoded(&self, catalog: &Catalog) -> Vec<Vec<Datum>> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .map(|&v| catalog.decode(v).expect("interned"))
                    .collect()
            })
            .collect()
    }
}
