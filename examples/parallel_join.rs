//! The partition-parallel execution engine, three ways: `par_join`
//! directly, `Algorithm::NprrParallel` through `join_with`, and a text
//! query on a parallel catalog.
//!
//! ```sh
//! cargo run --release --example parallel_join
//! ```

use std::time::Instant;
use wcoj::prelude::*;
use wcoj::query::run_program;

fn main() {
    // A triangle-dense power-law graph, the workload the paper motivates.
    let edges = wcoj::datagen::preferential_attachment_edges(42, 3000, 6);
    println!("graph: {} edges", edges.len());

    // Triangle query over three aliases of the edge relation
    // (E has attributes (0, 1); rename to place it on each triangle side).
    use wcoj::storage::ops::rename;
    let r = edges.clone();
    let s = rename(&edges, &[(Attr(0), Attr(1)), (Attr(1), Attr(2))]).expect("rename");
    let t = rename(&edges, &[(Attr(1), Attr(2))]).expect("rename");
    let rels = [r, s, t];

    // --- 1. par_join with an explicit config --------------------------
    for threads in [1usize, 2, 4] {
        let cfg = ExecConfig {
            threads,
            shard_min_size: 1,
            ..ExecConfig::default()
        };
        let start = Instant::now();
        let out = par_join(&rels, &cfg).expect("well-formed query");
        println!(
            "par_join  threads={threads}: {} tuples in {:.1} ms ({} shards)",
            out.relation.len(),
            start.elapsed().as_secs_f64() * 1e3,
            out.stats.shards,
        );
    }

    // --- 2. the Algorithm variant through the facade ------------------
    let out = join_with(&rels, Algorithm::NprrParallel, None).expect("parallel engine installed");
    println!(
        "join_with(NprrParallel): {} tuples via {}",
        out.relation.len(),
        out.stats.algorithm_used
    );

    // --- 3. a Datalog program on a parallel catalog -------------------
    let mut catalog = Catalog::new();
    catalog.insert("E", edges);
    catalog.set_parallel(Some(ExecConfig::with_threads(4)));
    let program = wcoj::query::parse_program(
        "wedge(x, y, z) :- E(x, y), E(y, z).\n\
         tri(x, y, z)   :- wedge(x, y, z), E(x, z).",
    )
    .expect("parses");
    let results = run_program(&program, &mut catalog).expect("runs");
    for (name, result) in &results {
        println!("rule {name}: {} tuples", result.relation.len());
    }
}
