//! The HTTP front end, end to end over a loopback socket: start
//! `wcoj-server` in-process, load a relation with `PUT /relation/E`,
//! submit a query with `POST /query`, stream its rows incrementally
//! from `GET /query/{id}/rows`, and finish with `/metrics` (validated
//! against the Prometheus text format). A curl-style smoke test with
//! `std::net::TcpStream` standing in for curl.
//!
//! ```sh
//! cargo run --release --example http_server
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use wcoj::query::Catalog;
use wcoj::server::{Server, ServerConfig};
use wcoj::service::{Service, ServiceConfig};

/// Sends one request, returns `(status_line, body)` — chunked bodies
/// are reassembled.
fn curl(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: example\r\n");
    if let Some(body) = body {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    if let Some(body) = body {
        req.push_str(body);
    }
    stream.write_all(req.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header terminator");
    let status_line = head.lines().next().expect("status line").to_owned();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let mut out = String::new();
        let mut rest = payload;
        loop {
            let (size_line, tail) = rest.split_once("\r\n").expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex size");
            if size == 0 {
                break;
            }
            out.push_str(&tail[..size]);
            rest = &tail[size + 2..];
        }
        out
    } else {
        payload.to_owned()
    };
    (status_line, body)
}

fn main() {
    // A server over a 2-worker service; `shard_min_size: 1` lets even
    // the small demo relation shard into multiple root slots, which is
    // what makes the row stream incremental.
    let service = Arc::new(Service::new(ServiceConfig {
        exec: wcoj::ExecConfig {
            shard_min_size: 1,
            ..wcoj::ExecConfig::default()
        },
        ..ServiceConfig::with_workers(2)
    }));
    let mut catalog = Catalog::new();
    catalog.set_service(Some(Arc::clone(&service)));
    let server = Server::start_with(
        ServerConfig {
            bind: "127.0.0.1:0".parse().expect("loopback"),
            ..ServerConfig::default()
        },
        catalog,
    )
    .expect("bind");
    let addr = server.addr();
    println!("server: http://{addr}");

    // --- 1. load a relation from CSV ----------------------------------
    let mut csv = String::new();
    for a in 0..30u32 {
        for b in 0..30u32 {
            if (a * 7 + b * 13) % 11 == 0 {
                csv.push_str(&format!("{a},{b}\n"));
            }
        }
    }
    let (status, body) = curl(addr, "PUT", "/relation/E", Some(&csv));
    println!("PUT /relation/E        → {status}  {body}");
    assert!(status.contains("200"));

    // --- 2. submit a join and stream its rows -------------------------
    let query = "path(x, z) :- E(x, y), E(y, z).";
    let (status, body) = curl(addr, "POST", "/query", Some(query));
    println!("POST /query            → {status}  {}", body.trim_end());
    assert!(status.contains("202"), "{body}");
    let id: u64 = body
        .split("\"id\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|t| t.parse().ok())
        .expect("job id");

    let (status, body) = curl(addr, "GET", &format!("/query/{id}?block=1"), None);
    println!("GET /query/{id}?block=1 → {status}  {}", body.trim_end());
    assert!(body.contains("\"finished\":true"), "{body}");

    let (status, rows) = curl(addr, "GET", &format!("/query/{id}/rows"), None);
    assert!(status.contains("200"), "{rows}");
    println!(
        "GET /query/{id}/rows    → {status}  ({} rows)",
        rows.lines().count()
    );

    // The streamed rows are bit-identical to an in-process sequential
    // run of the same query.
    let mut oracle = Catalog::new();
    let rel = wcoj::query::load_csv(&csv, oracle.dictionary()).expect("CSV");
    oracle.insert("E", rel);
    let q = wcoj::query::parse_query(query).expect("parse");
    let expected = wcoj::query::execute(&q, &oracle).expect("execute");
    let expected_rows: Vec<String> = expected
        .decoded_rows(&oracle)
        .iter()
        .map(|row| {
            row.iter()
                .map(|d| format!("{d}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    let streamed_rows: Vec<&str> = rows.lines().collect();
    assert_eq!(
        streamed_rows, expected_rows,
        "stream differs from join_nprr"
    );
    println!("bit-identical to the sequential engine ✓");

    // --- 3. metrics exposition ----------------------------------------
    let (status, metrics) = curl(addr, "GET", "/metrics", None);
    assert!(status.contains("200"));
    wcoj::obs::check_exposition(&metrics).expect("valid Prometheus exposition");
    let served: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("wcoj_server_") && !l.starts_with('#'))
        .collect();
    println!(
        "GET /metrics           → {status}  ({} wcoj_server_* series)",
        served.len()
    );
    for line in served {
        println!("  {line}");
    }
    assert!(!metrics.is_empty());
    println!("done");
}
