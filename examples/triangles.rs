//! Triangle listing in a social graph — the workload the paper's
//! introduction motivates (and the `n = 3` Loomis–Whitney instance).
//!
//! Enumerates all triangles of a power-law graph twice — with the
//! worst-case-optimal join and with a binary hash-join plan — and compares
//! the intermediate sizes: on skewed graphs the binary plan's first join
//! materialises far more wedges than there are triangles.
//!
//! ```sh
//! cargo run --release --example triangles
//! ```

use std::time::Instant;
use wcoj::baselines::plan::execute_left_deep;
use wcoj::prelude::*;
use wcoj::storage::ops::rename;

fn main() {
    // An undirected preferential-attachment graph as a sorted edge list
    // E(u, v) with u < v; triangles are (x < y < z) with all three edges.
    let edges = wcoj::datagen::preferential_attachment_edges(42, 2_000, 4);
    println!("graph: {} edges", edges.len());

    // Triangle query: E(x,y) ⋈ E(y,z) ⋈ E(x,z) over attrs x=0, y=1, z=2.
    let exy = edges.clone(); // schema (0, 1)
    let eyz = rename(&edges, &[(Attr(0), Attr(1)), (Attr(1), Attr(2))]).expect("rename");
    let exz = rename(&edges, &[(Attr(1), Attr(2))]).expect("rename");
    let rels = [exy, eyz, exz];

    // worst-case optimal (Algorithm 1 — the triangle is LW(3))
    let start = Instant::now();
    let out = join_with(&rels, Algorithm::Auto, None).expect("join");
    let t_wcoj = start.elapsed();
    println!(
        "wcoj ({}): {} triangles in {:.1} ms (intermediates: {})",
        out.stats.algorithm_used,
        out.relation.len(),
        t_wcoj.as_secs_f64() * 1e3,
        out.stats.intermediate_tuples,
    );

    // binary plan: (E ⋈ E) ⋈ E — materialises every wedge first
    let start = Instant::now();
    let (bout, stats) = execute_left_deep(&rels, &[0, 1, 2]).expect("plan");
    let t_bin = start.elapsed();
    println!(
        "binary plan: {} triangles in {:.1} ms (max intermediate: {} wedges)",
        bout.len(),
        t_bin.as_secs_f64() * 1e3,
        stats.max_intermediate,
    );
    assert_eq!(out.relation.len(), bout.len());

    let blow_up = stats.max_intermediate as f64 / out.relation.len().max(1) as f64;
    println!("wedge blow-up factor over the output: {blow_up:.1}×");

    // AGM bound context
    let cover = agm_cover(&rels).expect("cover");
    println!(
        "AGM bound: {:.0} (output is {:.1}% of the worst case)",
        cover.bound(),
        100.0 * out.relation.len() as f64 / cover.bound()
    );

    // On friendly graphs the classical plan can win — worst-case optimality
    // is not instance optimality (the paper proves instance optimality is
    // impossible unless NP = RP, §7.1). The guarantee bites on adversarial
    // inputs: the paper's Example 2.2 family.
    println!("\n--- adversarial instance (Example 2.2, N = 4096) ---");
    let hard = wcoj::datagen::example_2_2(4096);
    let start = Instant::now();
    let out = join_with(&hard, Algorithm::Auto, None).expect("join");
    let t_wcoj = start.elapsed();
    let start = Instant::now();
    let (bout, stats) = execute_left_deep(&hard, &[0, 1, 2]).expect("plan");
    let t_bin = start.elapsed();
    assert!(out.relation.is_empty() && bout.is_empty());
    println!(
        "wcoj: {:.1} ms | binary plan: {:.1} ms (forced through a {}-tuple intermediate)",
        t_wcoj.as_secs_f64() * 1e3,
        t_bin.as_secs_f64() * 1e3,
        stats.max_intermediate,
    );
}
