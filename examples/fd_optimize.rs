//! Functional-dependency-aware joining (§7.3): when `A → Bᵢ` holds, the
//! paper's expansion collapses the AGM bound from `N^k` to `N²` and saves
//! the engine from catastrophic join orders.
//!
//! The schema is the paper's own family:
//! `q = (⋈ᵢ Rᵢ(A, Bᵢ)) ⋈ (⋈ᵢ Sᵢ(Bᵢ, C))` with FDs `A → Bᵢ` on each `Rᵢ`.
//!
//! ```sh
//! cargo run --release --example fd_optimize
//! ```

use std::time::Instant;
use wcoj::baselines::plan::execute_left_deep;
use wcoj::core::fd::{expanded_log2_bound, join_with_fds, Fd};
use wcoj::prelude::*;

fn main() {
    let k = 3u32;
    let n = 512usize;
    let (rels, fd_triples) = wcoj::datagen::fd_family(7, k, n);
    let fds: Vec<Fd> = fd_triples
        .iter()
        .map(|&(edge, from, to)| Fd {
            edge,
            from: Attr(from),
            to: Attr(to),
        })
        .collect();
    println!(
        "family: k = {k}, N = {n} → {} relations, {} declared FDs",
        rels.len(),
        fds.len()
    );

    // FD-blind AGM bound vs FD-aware bound.
    let q = JoinQuery::new(&rels).expect("query");
    let blind = q.optimal_cover().expect("LP").log2_bound;
    let aware = expanded_log2_bound(&rels, &fds).expect("LP");
    println!("FD-blind AGM bound:  2^{blind:.1}");
    println!("FD-aware AGM bound:  2^{aware:.1}");

    // FD-aware evaluation.
    let start = Instant::now();
    let out = join_with_fds(&rels, &fds).expect("fd join");
    let t_fd = start.elapsed();
    println!(
        "FD-aware join: {} tuples in {:.1} ms",
        out.relation.len(),
        t_fd.as_secs_f64() * 1e3
    );

    // The paper's warning: join the Sᵢ half first and the intermediate can
    // blow up to ~N^k before the Rᵢ constraints bite.
    let wrong_order: Vec<usize> = (k as usize..2 * k as usize).chain(0..k as usize).collect();
    let start = Instant::now();
    let (bout, stats) = execute_left_deep(&rels, &wrong_order).expect("plan");
    let t_wrong = start.elapsed();
    println!(
        "FD-blind wrong-order plan: {} tuples in {:.1} ms (max intermediate: {})",
        bout.len(),
        t_wrong.as_secs_f64() * 1e3,
        stats.max_intermediate
    );
    assert_eq!(out.relation.len(), bout.len());
    println!(
        "intermediate blow-up avoided: {:.0}×",
        stats.max_intermediate as f64 / out.relation.len().max(1) as f64
    );
}
