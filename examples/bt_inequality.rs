//! The algorithmic Loomis–Whitney / Bollobás–Thomason inequality (§3,
//! Corollary 5.3): reconstruct a hidden 3-D point set from its 2-D
//! "shadows" (projections onto the coordinate planes), never doing more
//! work than the geometric bound `(∏|shadow|)^{1/2}` allows.
//!
//! ```sh
//! cargo run --release --example bt_inequality
//! ```

use wcoj::core::bt;
use wcoj::prelude::*;
use wcoj::storage::ops::project;

fn main() {
    // A hidden set S ⊂ ℤ³: a hollow cube shell.
    let k = 8u64;
    let schema = Schema::of(&[0, 1, 2]);
    let mut rows = Vec::new();
    for x in 0..k {
        for y in 0..k {
            for z in 0..k {
                let on_face = [x, y, z].iter().any(|&c| c == 0 || c == k - 1);
                if on_face {
                    rows.push(vec![Value(x), Value(y), Value(z)]);
                }
            }
        }
    }
    let s = Relation::from_rows(schema, rows).expect("shell");
    println!("hidden set: {} points (a {k}³ cube shell)", s.len());

    // Its three axis-aligned shadows.
    let shadows: Vec<Relation> = [(1u32, 2u32), (0, 2), (0, 1)]
        .iter()
        .map(|&(a, b)| project(&s, &[Attr(a), Attr(b)]).expect("projection"))
        .collect();
    for (i, sh) in shadows.iter().enumerate() {
        println!("shadow ⊥ axis {i}: {} points", sh.len());
    }

    // Reconstruct: the join of the shadows is the smallest "box hull"
    // containing S, and the LW inequality |S|² ≤ ∏|shadows| caps its size.
    let out = bt::reconstruct(&shadows).expect("2-regular family");
    let bound = out.log2_bound.exp2();
    println!(
        "\njoin of shadows: {} points   (LW bound: {:.0})",
        out.relation.len(),
        bound
    );
    println!(
        "inequality |S|^2 ≤ ∏|S_F|:  {}² = {} ≤ {:.0}  ✓",
        s.len(),
        s.len() * s.len(),
        shadows.iter().map(|r| r.len() as f64).product::<f64>()
    );
    assert!(s.iter_rows().all(|row| out.relation.contains_row(row)));
    assert!(bt::inequality_holds(
        out.relation.len(),
        out.d,
        &shadows.iter().map(Relation::len).collect::<Vec<_>>()
    ));
    println!("every hidden point is inside the reconstruction  ✓");
}
