//! Relaxed joins (§7.2) as "forgiving search": find candidate matches that
//! satisfy *most* of a query's constraints, ranked by how many they
//! satisfy.
//!
//! Scenario: match people to job postings on three criteria — skill, city,
//! and seniority. A strict join returns only perfect matches; the relaxed
//! join `q_r` also surfaces near-misses that fail up to `r` criteria.
//!
//! ```sh
//! cargo run --release --example relaxed_search
//! ```

use wcoj::core::relaxed::relaxed_join;
use wcoj::prelude::*;

fn main() {
    let dict = Dictionary::new();
    let enc = |s: &str| dict.encode_str(s);

    // Attributes: person=0, job=1.
    // Three "criteria" relations over (person, job):
    let mk = |pairs: &[(&str, &str)]| {
        let rows: Vec<Vec<Value>> = pairs.iter().map(|&(p, j)| vec![enc(p), enc(j)]).collect();
        Relation::from_rows(Schema::of(&[0, 1]), rows).expect("pairs")
    };

    let skill_ok = mk(&[
        ("ada", "compiler"),
        ("ada", "database"),
        ("grace", "compiler"),
        ("alan", "database"),
    ]);
    let city_ok = mk(&[
        ("ada", "compiler"),
        ("grace", "compiler"),
        ("grace", "database"),
        ("alan", "database"),
    ]);
    let seniority_ok = mk(&[
        ("ada", "compiler"),
        ("alan", "compiler"),
        ("alan", "database"),
    ]);

    let rels = [skill_ok, city_ok, seniority_ok];

    for r in 0..=2usize {
        let out = relaxed_join(&rels, r).expect("relaxed join");
        println!(
            "q_{r} (≥ {} of 3 criteria): {} matches over {} LP classes",
            3 - r,
            out.relation.len(),
            out.classes
        );
        for row in out.relation.iter_rows() {
            // count which criteria the pair satisfies, for display
            let agree = rels.iter().filter(|rel| rel.contains_row(row)).count();
            let p = dict.decode(row[0]).expect("interned");
            let j = dict.decode(row[1]).expect("interned");
            println!("  {p} → {j}  ({agree}/3 criteria)");
        }
    }
}
