//! Observability end to end: per-query execution profiles from the
//! shared-pool service, the trace event ring, and the process-wide
//! metrics registry rendered in Prometheus text format.
//!
//! ```sh
//! cargo run --release --example observability
//! # or, to see scheduler decisions as they happen:
//! WCOJ_TRACE=summary cargo run --release --example observability
//! ```
//!
//! Everything here is std-only (`wcoj-obs` has no dependencies) and
//! compiled in unconditionally — when tracing is off and
//! `ServiceConfig::obs` is false, the hot path pays a single relaxed
//! atomic load per decision point.

use std::sync::Arc;

use wcoj::core::nprr::PreparedQuery;
use wcoj::obs::{check_exposition, global, trace};
use wcoj::prelude::*;
use wcoj::TraceLevel;

fn main() {
    // WCOJ_TRACE (off | summary | verbose) selects the trace level; for
    // a self-contained demo, default the ring to summary when unset.
    if let Some(level) = wcoj::exec::trace_level_from_env() {
        trace().set_level(level);
    } else if trace().level() == TraceLevel::Off {
        trace().set_level(TraceLevel::Summary);
    }

    // --- 1. per-query profiles from the service -----------------------
    let mut cfg_env = ServiceConfig::from_env();
    cfg_env.workers = 2;
    let service = Arc::new(Service::new(cfg_env));
    let instances = [
        ("triangle_hard", wcoj::datagen::example_2_2(128)),
        ("cycle5", wcoj::datagen::cycle_instance(7, 5, 200, 15)),
        ("hot_key", wcoj::datagen::hot_key_triangle(17, 96, 3)),
    ];
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    for (name, rels) in &instances {
        let prepared = Arc::new(PreparedQuery::new(rels).expect("well-formed query"));
        let handle = service.submit(&prepared, &cfg).expect("admit");
        let (out, profile) = handle.wait_profiled().expect("join");
        assert!(profile.is_complete(), "every shard reports a profile");
        assert_eq!(profile.total_rows(), out.relation.len() as u64);
        println!(
            "{name}: {} rows, {} shards, admitted {:?}, planned {:?}, \
             first task {:?}, last task {:?}, reassembled {:?}",
            out.relation.len(),
            profile.total_shards,
            profile.admitted,
            profile.planned.expect("planned"),
            profile.first_dispatch.expect("dispatched"),
            profile.last_finish.expect("finished"),
            profile.reassembled.expect("reassembled"),
        );
        for shard in &profile.shards {
            println!(
                "    shard {}: queue wait {:?}, run {:?}, {} rows",
                shard.slot, shard.queue_wait, shard.run, shard.rows
            );
        }
    }

    // --- 2. profiles through the text-query catalog -------------------
    let edges = wcoj::datagen::preferential_attachment_edges(42, 500, 4);
    let mut catalog = Catalog::new();
    catalog.insert("E", edges);
    catalog.set_service(Some(Arc::clone(&service)));
    let q = parse_query("Tri(x, y, z) :- E(x, y), E(y, z), E(x, z).").expect("parse");
    let (res, profile) = execute_profiled(&q, &catalog).expect("execute");
    let profile = profile.expect("catalog routes through the service");
    println!(
        "catalog query: {} rows over {} shards (query id {})",
        res.relation.len(),
        profile.total_shards,
        profile.query_id,
    );
    // Repeat the same query: the prepared plan (reduction + cover LP +
    // flat indexes) is served from the catalog's plan cache, and the
    // hit/miss account is mirrored into the metrics registry.
    let (repeat, _) = execute_profiled(&q, &catalog).expect("repeat execute");
    assert_eq!(repeat.relation, res.relation, "cache hit changes nothing");
    let (hits, misses) = catalog.plan_cache_stats();
    assert!(hits >= 1, "the repeat submission hit the plan cache");
    assert_eq!(misses, 1, "only the first submission built a plan");
    println!("plan cache: {hits} hits / {misses} misses");

    // --- 3. the trace event ring --------------------------------------
    let events = trace().drain();
    println!(
        "trace ring: {} events (capacity bounded, lossy by design)",
        events.len()
    );
    for event in events.iter().take(8) {
        println!("    {event:?}");
    }
    assert!(
        !events.is_empty(),
        "summary tracing records admissions and completions"
    );

    // --- 4. the metrics registry, Prometheus text format --------------
    let text = global().render_prometheus();
    check_exposition(&text).expect("well-formed exposition");
    assert!(
        text.contains("wcoj_plan_cache_hits_total")
            && text.contains("wcoj_plan_cache_misses_total"),
        "plan-cache counters are mirrored into the registry"
    );
    for line in text.lines() {
        if line.starts_with("# TYPE") || !line.starts_with('#') && !line.contains("_bucket") {
            println!("{line}");
        }
    }
}
