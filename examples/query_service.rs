//! The shared-pool query service, three ways: direct `submit`/`wait`
//! with prepared indexes, many concurrent submissions from client
//! threads, and a text-query catalog routed through the pool.
//!
//! ```sh
//! cargo run --release --example query_service
//! ```

use std::sync::Arc;
use std::time::Instant;
use wcoj::core::nprr::PreparedQuery;
use wcoj::prelude::*;
use wcoj::storage::ops::rename;

fn main() {
    // A triangle-dense power-law graph: skewed degrees are exactly the
    // workload the work-based shard splitter is for.
    let edges = wcoj::datagen::preferential_attachment_edges(42, 2000, 6);
    println!("graph: {} edges", edges.len());

    let r = edges.clone();
    let s = rename(&edges, &[(Attr(0), Attr(1)), (Attr(1), Attr(2))]).expect("rename");
    let t = rename(&edges, &[(Attr(1), Attr(2))]).expect("rename");
    let rels = vec![r, s, t];

    // One service for the whole process: queries share its pool instead
    // of each spinning up their own.
    let service = Arc::new(Service::new(ServiceConfig::with_workers(4)));
    println!("service: {} pool workers", service.workers());

    // --- 1. submit/wait with shared prepared indexes ------------------
    let prepared = Arc::new(PreparedQuery::new(&rels).expect("well-formed query"));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    let start = Instant::now();
    let out = service
        .submit(&prepared, &cfg)
        .expect("plan")
        .wait()
        .expect("join");
    println!(
        "submit/wait: {} triangles in {:.1} ms ({} work-sized shards)",
        out.relation.len(),
        start.elapsed().as_secs_f64() * 1e3,
        out.stats.shards,
    );

    // --- 2. many in-flight queries from client threads ----------------
    let start = Instant::now();
    let n_clients = 8;
    let per_client = 4;
    std::thread::scope(|scope| {
        for client in 0..n_clients {
            let service = Arc::clone(&service);
            let prepared = Arc::clone(&prepared);
            let cfg = cfg.clone();
            let expect = out.relation.len();
            scope.spawn(move || {
                for _ in 0..per_client {
                    let got = service
                        .submit(&prepared, &cfg)
                        .expect("plan")
                        .wait()
                        .expect("join");
                    assert_eq!(got.relation.len(), expect, "client {client}");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let queries = f64::from(n_clients * per_client);
    println!(
        "{n_clients} clients × {per_client} queries: {:.1} ms total, {:.0} queries/s, \
         {} submissions over the service lifetime",
        secs * 1e3,
        queries / secs,
        service.submitted(),
    );

    // --- 3. a catalog routed through the shared pool ------------------
    let mut catalog = Catalog::new();
    catalog.insert("E", edges);
    catalog.set_service(Some(Arc::clone(&service)));
    let q = parse_query("Tri(x, y, z) :- E(x, y), E(y, z), E(x, z).").expect("parse");
    let res = execute(&q, &catalog).expect("execute");
    println!(
        "catalog query on the service: {} rows (columns {:?})",
        res.relation.len(),
        res.columns,
    );

    // --- 4. bounded admission: shed or wait under overload ------------
    // A service with a queue bound refuses (sheds) burst submissions
    // past the bound instead of queueing without limit; callers that
    // prefer delay use submit_blocking. WCOJ_QUEUE_DEPTH overrides the
    // bound (ServiceConfig::from_env); default here: 2.
    let mut bounded_cfg = ServiceConfig::from_env();
    bounded_cfg.workers = 2;
    if bounded_cfg.queue_depth == 0 {
        bounded_cfg.queue_depth = 2;
    }
    let depth = bounded_cfg.queue_depth;
    let bounded = Service::new(bounded_cfg);
    let mut shed = 0usize;
    let mut handles = Vec::new();
    for _ in 0..6 {
        match bounded.submit(&prepared, &cfg) {
            Ok(h) => handles.push(h),
            Err(SubmitError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("submit: {e}"),
        }
    }
    // a blocking submission waits out the overload instead
    let blocked = bounded
        .submit_blocking(&prepared, &cfg)
        .expect("blocking submit never sheds");
    handles.push(blocked);
    for h in handles {
        assert_eq!(h.wait().expect("join").relation.len(), out.relation.len());
    }
    let counters = bounded.counters();
    println!(
        "bounded service (depth {depth}): {} accepted, {shed} shed, counters {counters:?}",
        counters.submitted,
    );
}
