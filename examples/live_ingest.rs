//! Live ingest walk-through: a mutable catalog serving queries while
//! rows stream in. Appends and deletes land in per-relation delta
//! buffers, every admitted query pins a copy-on-write snapshot, and
//! compaction folds the buffers into fresh base indexes — all without
//! an in-flight query ever seeing a mutation.
//!
//! ```sh
//! cargo run --release --example live_ingest
//! ```

use std::sync::Arc;
use wcoj::query::{execute, parse_query, submit_query, Catalog};
use wcoj::service::{Service, ServiceConfig};
use wcoj::storage::Value;

fn main() {
    let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
    let mut catalog = Catalog::new();
    catalog.set_service(Some(Arc::clone(&service)));

    // --- 1. seed three relations from a random graph ------------------
    let edges = wcoj::datagen::preferential_attachment_edges(7, 1200, 5);
    catalog.insert("R", edges.clone());
    catalog.insert(
        "S",
        wcoj::storage::ops::rename(
            &edges,
            &[
                (wcoj::storage::Attr(0), wcoj::storage::Attr(1)),
                (wcoj::storage::Attr(1), wcoj::storage::Attr(2)),
            ],
        )
        .expect("rename"),
    );
    catalog.insert(
        "T",
        wcoj::storage::ops::rename(&edges, &[(wcoj::storage::Attr(1), wcoj::storage::Attr(2))])
            .expect("rename"),
    );
    let q = parse_query("tri(x, y, z) :- R(x, y), S(y, z), T(x, z).").expect("query");
    println!(
        "seeded R/S/T with {} rows each (generation R = {:?})",
        catalog.row_count("R").unwrap(),
        catalog.generation("R")
    );

    // --- 2. pin a snapshot, then mutate underneath it ------------------
    let snapshot = catalog.freeze();
    snapshot.record_age();
    let mut pending = submit_query(&q, snapshot.catalog()).expect("submit");
    println!(
        "admitted a streaming triangle query against the pinned snapshot \
         (incremental = {})",
        pending.incremental()
    );

    // Rows arrive while the query is in flight: deltas, not rebuilds.
    let fresh: Vec<Vec<Value>> = (0..64)
        .map(|i| vec![Value(5000 + i), Value(5001 + i)])
        .collect();
    let appended = catalog
        .insert_rows("R", &fresh)
        .expect("append")
        .expect("R is registered");
    let deleted = catalog
        .delete_rows("R", &fresh[..8])
        .expect("delete")
        .expect("R is registered");
    // One append per relation completes a brand-new triangle — visible
    // to queries admitted from now on, invisible to the pinned one.
    for (name, a, b) in [("R", 9001, 9002), ("S", 9002, 9003), ("T", 9001, 9003)] {
        catalog
            .insert_rows(name, &[vec![Value(a), Value(b)]])
            .expect("append")
            .expect("registered");
    }
    println!(
        "mid-flight ingest: +{appended} −{deleted} rows on R \
         (delta buffer = {} rows, generation now {:?})",
        catalog.delta("R").unwrap().delta_len(),
        catalog.generation("R")
    );

    // --- 3. the pinned snapshot is untouched ---------------------------
    let mut streamed = 0usize;
    while let Some(batch) = pending.next_batch() {
        streamed += batch.expect("batch").len();
    }
    let sequential = execute(&q, snapshot.catalog()).expect("sequential");
    let live = execute(&q, &catalog).expect("live");
    println!(
        "streamed {streamed} rows == sequential-over-snapshot {} rows; \
         live catalog now answers {} rows",
        sequential.relation.len(),
        live.relation.len()
    );
    assert_eq!(streamed, sequential.relation.len());
    assert_eq!(
        live.relation.len(),
        sequential.relation.len() + 1,
        "exactly the one hand-built triangle is new"
    );

    // --- 4. compaction folds the buffers into a fresh base -------------
    let gen_before = catalog.base_generation("R");
    assert!(catalog.compact("R"), "R had buffered rows to fold");
    println!(
        "compacted R: delta buffer {} rows, base generation {:?} -> {:?}",
        catalog.delta("R").unwrap().delta_len(),
        gen_before,
        catalog.base_generation("R")
    );
    let compacted = execute(&q, &catalog).expect("after compaction");
    assert_eq!(compacted.relation, live.relation, "compaction is a no-op");

    // --- 5. the account the catalog kept -------------------------------
    let (hits, misses) = catalog.plan_cache_stats();
    println!(
        "plan cache: {hits} hits, {misses} misses, {} weight refreshes",
        catalog.plan_cache().refreshes()
    );
    let text = wcoj::obs::global().render_prometheus();
    for line in text.lines() {
        if line.starts_with("wcoj_catalog_") {
            println!("metrics: {line}");
        }
    }
    wcoj::obs::check_exposition(&text).expect("valid exposition");
}
